package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/texture"
)

// This file holds the ablation studies DESIGN.md calls out: each isolates
// one design choice of the toolkit and measures its contribution.

// calibratedCustomerDemand reproduces the Figure-15 demand anchor for the
// ablations: customer demand calibrated to the reference constellation.
func calibratedCustomerDemand(scale Scale, lib *texture.Library) *demand.Demand {
	starlink := scaledShellSatellites(baseline.StarlinkShells(), scale)
	sup := baseline.Supply(baseline.SupplyConfig{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		SubSamples: scale.SubSamples, Parallelism: scale.Parallelism,
	}, starlink)
	dem := demand.StarlinkCustomers(scale.ScenarioOptions())
	dem.CalibrateToSupply(sup, scale.Epsilon)
	dem.Scale(0.85)
	return dem
}

// AblationSolver sweeps the solver's two quality knobs — the per-iteration
// add cap and the pruning pass — quantifying why the defaults are
// greedy-with-pruning.
func AblationSolver(scale Scale, lib *texture.Library) (*metrics.Table, error) {
	dem := calibratedCustomerDemand(scale, lib)
	tab := metrics.NewTable("Ablation: solver add-cap and pruning",
		"max add/iter", "pruning", "satellites", "pruned", "iterations", "availability")
	for _, maxAdd := range []int{1, 4, 16, 64} {
		for _, prune := range []bool{true, false} {
			res, err := core.Sparsify(core.Problem{
				Library: lib, Demand: dem.Y, Epsilon: scale.Epsilon,
				MaxAddPerIteration: maxAdd, DisablePrune: !prune,
				Parallelism: scale.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			p := "off"
			if prune {
				p = "on"
			}
			tab.AddRow(maxAdd, p, res.Satellites, res.Pruned, res.Iterations,
				fmt.Sprintf("%.4f", res.Availability))
		}
	}
	return tab, nil
}

// AblationLibraryRichness sweeps the texture library's over-completeness
// (the paper's core premise: more diverse candidates ⇒ better matching)
// by varying the RAAN/phase grid.
func AblationLibraryRichness(scale Scale) (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation: texture library over-completeness",
		"RAANs", "phases", "tracks", "satellites", "availability")
	for _, cfg := range []struct{ raans, phases int }{
		{4, 2}, {8, 3}, {12, 4}, {16, 4},
	} {
		s := scale
		s.RAANs = cfg.raans
		s.Phases = cfg.phases
		lib, err := s.BuildLibrary()
		if err != nil {
			return nil, err
		}
		dem := calibratedCustomerDemand(s, lib)
		// A deliberately achievable target: the poorest library in the
		// sweep cannot reach the headline ε, which is itself the point.
		res, err := core.Sparsify(core.Problem{
			Library: lib, Demand: dem.Y, Epsilon: 0.75, Parallelism: s.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(cfg.raans, cfg.phases, lib.NumTracks(), res.Satellites,
			fmt.Sprintf("%.4f", res.Availability))
	}
	return tab, nil
}

// AblationMPCLifetime compares the MPC's lifetime-preference stable
// matching (§4.2's τ) against distance-preference matching: the lifetime
// preference should yield fewer ISL reconfigurations across slots.
func AblationMPCLifetime(scale Scale) (*metrics.Table, error) {
	sats := controlConstellation(scale)
	topo, err := controlIntent(scale, sats)
	if err != nil {
		return nil, err
	}
	// Fine-grained control slots: at coarse slots most churn comes from
	// coverage turnover, masking the preference effect the ablation probes.
	dt := scale.ControlDt / 5
	slots := scale.ControlSlots * 3
	churnWith := func(horizon float64) (int, error) {
		ctl, err := mpc.New(mpc.Config{
			Topo: topo, Sats: sats, Coverage: controlCoverage(),
			LifetimeHorizon: horizon, LifetimeStep: dt / 2,
		})
		if err != nil {
			return 0, err
		}
		churn := 0
		var prev *mpc.Snapshot
		for s := 0; s < slots; s++ {
			snap := ctl.Compile(float64(s) * dt)
			a, r := mpc.DiffLinks(prev, snap)
			if prev != nil {
				churn += len(a) + len(r)
			}
			prev = snap
		}
		return churn, nil
	}
	// A horizon of one step degenerates τ to binary "visible right now" —
	// the myopic baseline; the full horizon is TinyLEO's design.
	myopic, err := churnWith(dt / 2)
	if err != nil {
		return nil, err
	}
	lifetime, err := churnWith(4 * scale.ControlDt)
	if err != nil {
		return nil, err
	}
	tab := metrics.NewTable("Ablation: MPC ISL-lifetime preference",
		"matching preference", "total ISL changes over run")
	tab.AddRow("myopic (visibility-now)", myopic)
	tab.AddRow("lifetime-predictive (TinyLEO)", lifetime)
	return tab, nil
}

// DiscussionFederation quantifies §7's decentralization story: regional
// operators federating a shared constellation versus planning alone.
func DiscussionFederation(scale Scale, lib *texture.Library) (*metrics.Table, error) {
	opt := scale.ScenarioOptions()
	full := demand.StarlinkCustomers(opt)
	m := lib.Grid.NumCells()
	regionOf := func(minLat, maxLat, minLon, maxLon float64) []float64 {
		out := make([]float64, len(full.Y))
		for i := 0; i < m; i++ {
			c := lib.Grid.Center(i)
			if c.Lat < minLat || c.Lat > maxLat || c.Lon < minLon || c.Lon > maxLon {
				continue
			}
			for s := 0; s < full.Slots; s++ {
				out[s*m+i] = full.Y[s*m+i] * 0.01
			}
		}
		return out
	}
	eps := scale.RelaxedEpsilon
	ops := []core.Operator{
		{Name: "americas", Demand: regionOf(-56, 60, -130, -30), Epsilon: eps},
		{Name: "emea", Demand: regionOf(-35, 60, -15, 60), Epsilon: eps},
		{Name: "apac", Demand: regionOf(-45, 55, 60, 180), Epsilon: eps},
	}
	fed, err := core.Federate(core.Problem{Library: lib, Parallelism: scale.Parallelism}, ops)
	if err != nil {
		return nil, err
	}
	tab := metrics.NewTable("Discussion (§7): multi-operator federation",
		"operator", "contribution (sats)", "availability on shared fleet")
	for _, name := range fed.OperatorNames() {
		tab.AddRow(name, fed.ContributionSize(name),
			fmt.Sprintf("%.4f", fed.Availability[name]))
	}
	tab.AddRow("federated total", fed.Satellites, "-")
	tab.AddRow("independent total", fed.IndependentSatellites, "-")
	tab.AddRow("sharing gain", fed.SharingGain,
		fmt.Sprintf("%.1f%%", 100*float64(fed.SharingGain)/float64(maxI(1, fed.IndependentSatellites))))
	return tab, nil
}

// DiscussionRadioOverlap quantifies §7's radio-link point: TinyLEO's
// sparse layout leaves fewer overlapping satellite footprints per
// demand-weighted cell than a uniform mega-constellation, easing spectrum
// and interference management.
func DiscussionRadioOverlap(scale Scale, outs []*SparsifyOutcome) (*metrics.Table, error) {
	tab := metrics.NewTable("Discussion (§7): radio footprint overlap over demand cells",
		"constellation", "mean satellites visible per demand cell", "p90")
	countCfg := baseline.SupplyConfig{
		Grid: scale.Grid(), Slots: scale.Slots, SlotSeconds: scale.SlotSeconds,
		SubSamples: 1, CountSatellites: true, Parallelism: scale.Parallelism,
	}
	o := outs[0] // the global-customers scenario
	weightStats := func(counts []float64) (mean, p90 float64) {
		var vals []float64
		for k, y := range o.Demand.Y {
			if y > 0 {
				vals = append(vals, counts[k])
			}
		}
		s := metrics.Summarize(vals)
		return s.Mean, s.P90
	}
	tinyCounts := baseline.Supply(countCfg, RealizeConstellation(o.Lib, o.TinyLEO))
	slCounts := baseline.Supply(countCfg, o.Starlink)
	tm, tp := weightStats(tinyCounts)
	sm, sp := weightStats(slCounts)
	tab.AddRow("TinyLEO", fmt.Sprintf("%.1f", tm), fmt.Sprintf("%.1f", tp))
	tab.AddRow("Starlink-like uniform", fmt.Sprintf("%.1f", sm), fmt.Sprintf("%.1f", sp))
	return tab, nil
}
