package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/baseline"
	"repro/internal/dataplane"
	"repro/internal/geom"
	"repro/internal/intent"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/orbit"
	"repro/internal/tssdn"
)

// dataPlaneTestbed is the shared §6.3 setup: a constellation, its mesh
// intent, one compiled snapshot, and the emulated network.
type dataPlaneTestbed struct {
	Sats  []orbit.Elements
	Topo  *intent.Topology
	Ctl   *mpc.Controller
	Snap  *mpc.Snapshot
	Net   *dataplane.Network
	Cells []int // intent cells with at least one homed satellite
}

func newDataPlaneTestbed(scale Scale) (*dataPlaneTestbed, error) {
	sats := controlConstellation(scale)
	topo, err := controlIntent(scale, sats)
	if err != nil {
		return nil, err
	}
	ctl, err := mpc.New(mpc.Config{
		Topo: topo, Sats: sats, Coverage: controlCoverage(),
		LifetimeHorizon: 2 * scale.ControlDt, LifetimeStep: scale.ControlDt / 5,
	})
	if err != nil {
		return nil, err
	}
	snap := ctl.Compile(0)
	net := NetworkFromSnapshot(snap, sats)
	tb := &dataPlaneTestbed{Sats: sats, Topo: topo, Ctl: ctl, Snap: snap, Net: net}
	for cell, members := range snap.CellSats {
		if len(members) > 0 {
			tb.Cells = append(tb.Cells, cell)
		}
	}
	sort.Ints(tb.Cells)
	if len(tb.Cells) < 2 {
		return nil, fmt.Errorf("experiments: data-plane testbed has %d populated cells", len(tb.Cells))
	}
	return tb, nil
}

// findWorkingRoute returns (srcCell, dstCell, route) for the longest
// intent route whose packets actually deliver in the emulated network.
func (tb *dataPlaneTestbed) findWorkingRoute(minHops int) (int, int, intent.Route, bool) {
	type candidate struct {
		src, dst int
		r        intent.Route
	}
	var best candidate
	found := false
	for _, src := range tb.Cells {
		for _, dst := range tb.Cells {
			if src >= dst {
				continue
			}
			r, err := tb.Topo.ShortestPathRoute(src, dst)
			if err != nil || len(r.Cells) < minHops+1 {
				continue
			}
			if !found || len(r.Cells) > len(best.r.Cells) {
				if tb.deliverProbe(src, r) {
					best = candidate{src, dst, r}
					found = true
				}
			}
		}
	}
	return best.src, best.dst, best.r, found
}

// gatewayOf returns an injection satellite for a cell: a gateway satellite
// (ring member), since only gateways participate in inter-cell forwarding.
func (tb *dataPlaneTestbed) gatewayOf(cell int) (int, bool) {
	for _, v := range tb.Topo.Neighbors(cell) {
		if g := tb.Snap.Gateways[[2]int{cell, v}]; len(g) > 0 {
			return g[0], true
		}
	}
	return -1, false
}

// deliverProbe checks a probe packet actually arrives along the route.
func (tb *dataPlaneTestbed) deliverProbe(src int, r intent.Route) bool {
	gw0, ok := tb.gatewayOf(src)
	if !ok {
		return false
	}
	gw := []int{gw0}
	delivered := false
	save := tb.Net.OnDeliver
	tb.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) { delivered = true }
	p, err := dataplane.NewGeoPacket(1, r.Cells, 0xFFFF, 0, nil)
	if err != nil {
		tb.Net.OnDeliver = save
		return false
	}
	tb.Net.Inject(gw[0], p)
	tb.Net.Sim.Run(tb.Net.Sim.Now() + 5)
	tb.Net.OnDeliver = save
	return delivered
}

// Figure18 enforces three routing policies and verifies delivery.
func Figure18(scale Scale) (*metrics.Table, error) {
	tb, err := newDataPlaneTestbed(scale)
	if err != nil {
		return nil, err
	}
	src, dst, shortest, ok := tb.findWorkingRoute(2)
	if !ok {
		return nil, fmt.Errorf("experiments: no deliverable route in testbed")
	}
	tab := metrics.NewTable("Figure 18: enforcement of routing policies",
		"policy", "route cells", "delivered", "sat hops", "delay (ms)")

	type policyRoute struct {
		name string
		r    intent.Route
	}
	var routes []policyRoute
	routes = append(routes, policyRoute{"shortest path", shortest})
	if oce, err := tb.Topo.OceanicOffloadRoute(src, dst, 4); err == nil {
		routes = append(routes, policyRoute{"oceanic offloading", oce})
	}
	if multi, err := tb.Topo.MultipathRoutes(src, dst, 2); err == nil {
		for i, r := range multi {
			routes = append(routes, policyRoute{fmt.Sprintf("multipath #%d", i+1), r})
		}
	}
	if mid := len(shortest.Cells) / 2; len(shortest.Cells) > 2 {
		avoid := map[int]bool{shortest.Cells[mid]: true}
		if det, err := tb.Topo.DetourRoute(src, dst, avoid); err == nil {
			routes = append(routes, policyRoute{"risk detour", det})
		}
	}

	for _, pr := range routes {
		if err := tb.Topo.VerifyRoute(pr.r); err != nil {
			return nil, fmt.Errorf("experiments: %s route invalid: %w", pr.name, err)
		}
		// §4.3's delivery guarantee holds when every hop of the (verified,
		// loop-free) route is enforced with ≥1 ISL; at small scale some
		// mesh edges may carry a gateway deficit, so flag those instead of
		// sending into a known-unenforced hop (the control plane would
		// repair them before installing the route).
		if !tb.routeEnforced(pr.r) {
			tab.AddRow(pr.name, len(pr.r.Cells), "skipped (unenforced hop)", "-", "-")
			continue
		}
		delivered, hops, delay := tb.sendOnce(src, pr.r)
		tab.AddRow(pr.name, len(pr.r.Cells), delivered, hops, fmt.Sprintf("%.2f", delay*1e3))
	}
	return tab, nil
}

// routeEnforced reports whether every hop of the route has gateway
// satellites on both sides in the compiled snapshot.
func (tb *dataPlaneTestbed) routeEnforced(r intent.Route) bool {
	for i := 1; i < len(r.Cells); i++ {
		u, v := r.Cells[i-1], r.Cells[i]
		if len(tb.Snap.Gateways[[2]int{u, v}]) == 0 || len(tb.Snap.Gateways[[2]int{v, u}]) == 0 {
			return false
		}
	}
	return true
}

func (tb *dataPlaneTestbed) sendOnce(srcCell int, r intent.Route) (bool, int, float64) {
	gw, ok := tb.gatewayOf(srcCell)
	if !ok {
		return false, 0, 0
	}
	delivered := false
	hops := 0
	var delay float64
	start := tb.Net.Sim.Now()
	tb.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) {
		delivered = true
		hops = len(p.HopTrace) - 1
		delay = tb.Net.Sim.Now() - start
	}
	p, err := dataplane.NewGeoPacket(uint32(gw), r.Cells, 1, 1, make([]byte, 256))
	if err != nil {
		return false, 0, 0
	}
	tb.Net.Inject(gw, p)
	tb.Net.Sim.Run(start + 5)
	tb.Net.OnDeliver = nil
	return delivered, hops, delay
}

// Figure19a compares routing stretch: TinyLEO's sparse network versus a
// Starlink-like constellation with (i) the standard 3-ISL grid topology
// and (ii) an MPC/proximity topology. Stretch is TinyLEO's propagation
// delay divided by the Starlink+MPC delay for the same O-D endpoints.
func Figure19a(scale Scale, backbone *SparsifyOutcome) (*metrics.Table, error) {
	tinySats := RealizeConstellation(backbone.Lib, backbone.TinyLEO)
	if len(tinySats) < 4 {
		return nil, fmt.Errorf("experiments: TinyLEO constellation too small (%d)", len(tinySats))
	}
	// TinyLEO topology: proximity topology over the sparse constellation
	// (the orbital-MPC compiled topology's physical layer). The greedy
	// nearest-neighbor motif can leave a *sparse* constellation partitioned
	// where a global planner would not, so stitch components with the
	// shortest visible inter-component links — the cross-orbit ISLs the
	// paper credits for TinyLEO's short paths (§6.3).
	tinyCtl, err := tssdn.New(tssdn.Config{Sats: tinySats})
	if err != nil {
		return nil, err
	}
	tinyLinks := connectComponents(tinySats, toMPCLinks(tinyCtl.Topology(0)), 0)

	slSats, slGrid := StarlinkGridTopology(scaledShells(scale))
	slCtl, err := tssdn.New(tssdn.Config{Sats: slSats})
	if err != nil {
		return nil, err
	}
	slMPC := toMPCLinks(slCtl.Topology(0))

	// O-D endpoints: backbone region anchor points.
	var anchors []geom.LatLon
	for _, r := range backboneRegionsSample() {
		anchors = append(anchors, r)
	}
	var stretches, tinyHops, gridHops []float64
	pairsTried, pairsReached := 0, 0
	for i := 0; i < len(anchors); i++ {
		for j := i + 1; j < len(anchors); j++ {
			pairsTried++
			ts, td := nearestSat(tinySats, anchors[i], 0), nearestSat(tinySats, anchors[j], 0)
			ss, sd := nearestSat(slSats, anchors[i], 0), nearestSat(slSats, anchors[j], 0)
			tDelay, tHop, ok1 := PathDelayOverLinks(tinySats, tinyLinks, ts, td, 0)
			mDelay, _, ok2 := PathDelayOverLinks(slSats, slMPC, ss, sd, 0)
			gDelay, gHop, ok3 := PathDelayOverLinks(slSats, slGrid, ss, sd, 0)
			if !ok1 || !ok2 {
				continue
			}
			pairsReached++
			stretches = append(stretches, tDelay/mDelay)
			tinyHops = append(tinyHops, float64(tHop))
			if ok3 {
				gridHops = append(gridHops, float64(gHop))
				_ = gDelay
			}
		}
	}
	if pairsReached == 0 {
		return nil, fmt.Errorf("experiments: no O-D pair reachable in both networks")
	}
	tab := metrics.NewTable("Figure 19a: routing stretch vs mega-constellation",
		"metric", "value", "paper")
	s := metrics.Summarize(stretches)
	tab.AddRow("stretch p50", fmt.Sprintf("%.2f", s.P50), "~1.1")
	tab.AddRow("stretch p90", fmt.Sprintf("%.2f", s.P90), "1.29")
	tab.AddRow("stretch max", fmt.Sprintf("%.2f", s.Max), "1.63")
	tab.AddRow("TinyLEO mean hops", fmt.Sprintf("%.1f", metrics.Mean(tinyHops)), "-")
	if len(gridHops) > 0 {
		tab.AddRow("Starlink+Grid mean hops", fmt.Sprintf("%.1f", metrics.Mean(gridHops)),
			"grid needs more hops than MPC")
	}
	tab.AddRow("O-D pairs evaluated", fmt.Sprintf("%d/%d", pairsReached, pairsTried), "-")
	return tab, nil
}

func scaledShells(scale Scale) []baseline.Shell {
	shells := baseline.StarlinkShells()
	total := 0
	for _, sh := range shells {
		total += sh.Config.NumSatellites()
	}
	f := float64(scale.ControlSats*6) / float64(total)
	if f >= 1 {
		return shells
	}
	out := make([]baseline.Shell, len(shells))
	for i, sh := range shells {
		w := sh.Config
		w.Planes = maxI(1, int(float64(w.Planes)*sqrtF(f)))
		w.SatsPerPlane = maxI(2, int(float64(w.SatsPerPlane)*sqrtF(f)))
		out[i] = baseline.Shell{Name: sh.Name, Config: w}
	}
	return out
}

func toMPCLinks(links []tssdn.Link) []mpc.Link {
	out := make([]mpc.Link, len(links))
	for i, l := range links {
		out[i] = mpc.Link{l[0], l[1]}
	}
	return out
}

func backboneRegionsSample() []geom.LatLon {
	return []geom.LatLon{
		{Lat: 40, Lon: -74}, {Lat: 50, Lon: 2}, {Lat: 35, Lon: 139},
		{Lat: -23, Lon: -46}, {Lat: 1, Lon: 103}, {Lat: 37, Lon: -122},
	}
}

func nearestSat(sats []orbit.Elements, p geom.LatLon, t float64) int {
	best, bestD := 0, math.Inf(1)
	for i, e := range sats {
		if d := geom.CentralAngle(e.SubSatellitePoint(t), p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Figure19bcd runs the packet-level data-plane measurements: RTT over a
// fixed route (19b), full-speed link utilization (19c), and local reroute
// latency under ISL failure versus the legacy control-plane path (19d).
func Figure19bcd(scale Scale) ([]*metrics.Table, error) {
	tb, err := newDataPlaneTestbed(scale)
	if err != nil {
		return nil, err
	}
	src, _, route, ok := tb.findWorkingRoute(2)
	if !ok {
		return nil, fmt.Errorf("experiments: no deliverable route")
	}

	// --- 19b: ping RTT over 100 s (modeled as 2× one-way delay, SRv6
	// geo packets vs legacy IPv6 routing tables over the same path).
	rttTab := metrics.NewTable("Figure 19b: end-to-end RTT over the route",
		"second", "TinyLEO SRv6 RTT (ms)", "legacy IPv6 RTT (ms)")
	gw, gwOK := tb.gatewayOf(src)
	if !gwOK {
		return nil, fmt.Errorf("experiments: 19b source cell has no gateway")
	}
	legacyPath, legacyDst := tb.installLegacyRoute(gw, route)
	var srvRTTs, legacyRTTs []float64
	for sec := 0; sec < 20; sec++ {
		var srvDelay, legDelay float64
		delivered := 0
		tb.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) {
			if p.Geo != nil {
				srvDelay = tb.Net.Sim.Now() - p.SentAt
			} else {
				legDelay = tb.Net.Sim.Now() - p.SentAt
			}
			delivered++
		}
		gp, _ := dataplane.NewGeoPacket(uint32(gw), route.Cells, 2, uint32(sec), make([]byte, 128))
		tb.Net.Inject(gw, gp)
		lp := &dataplane.Packet{Base: dataplane.BaseHeader{
			Ver: dataplane.Version, HopLimit: 64, FlowID: uint32(legacyDst),
		}, Payload: make([]byte, 128)}
		tb.Net.Inject(gw, lp)
		tb.Net.Sim.Run(tb.Net.Sim.Now() + 1)
		if delivered == 2 {
			srvRTTs = append(srvRTTs, 2*srvDelay*1e3)
			legacyRTTs = append(legacyRTTs, 2*legDelay*1e3)
			rttTab.AddRow(sec, fmt.Sprintf("%.2f", 2*srvDelay*1e3), fmt.Sprintf("%.2f", 2*legDelay*1e3))
		}
	}
	tb.Net.OnDeliver = nil
	if len(srvRTTs) == 0 {
		return nil, fmt.Errorf("experiments: 19b pings never delivered")
	}
	summary19b := metrics.NewTable("Figure 19b (summary)", "plane", "mean RTT (ms)", "paper")
	summary19b.AddRow("TinyLEO SRv6", fmt.Sprintf("%.2f", metrics.Mean(srvRTTs)), "≈ propagation delay")
	summary19b.AddRow("legacy IPv6", fmt.Sprintf("%.2f", metrics.Mean(legacyRTTs)), "comparable to SRv6")
	_ = legacyPath

	// --- 19c: full-speed forwarding utilization. Use a slow-link copy of
	// the first hop so the event count stays tractable.
	utilTab, err := figure19c(tb, gw, route)
	if err != nil {
		return nil, err
	}

	// --- 19d: local reroute vs control-plane repair.
	failTab, err := figure19d(scale)
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{rttTab, summary19b, utilTab, failTab}, nil
}

// installLegacyRoute installs per-satellite routing-table entries along
// the geo route's gateway chain; returns the path and destination sat.
func (tb *dataPlaneTestbed) installLegacyRoute(gw int, r intent.Route) ([]int, int) {
	// Discover the concrete satellite path a geo packet takes, then pin it
	// into routing tables.
	var path []int
	tb.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) {
		path = append([]int(nil), p.HopTrace...)
	}
	p, _ := dataplane.NewGeoPacket(uint32(gw), r.Cells, 3, 0, nil)
	tb.Net.Inject(gw, p)
	tb.Net.Sim.Run(tb.Net.Sim.Now() + 5)
	tb.Net.OnDeliver = nil
	if len(path) < 2 {
		return nil, gw
	}
	dst := path[len(path)-1]
	for i := 0; i < len(path)-1; i++ {
		s := tb.Net.Sats[path[i]]
		if s.RoutingTable == nil {
			s.RoutingTable = map[uint32]int{}
		}
		s.RoutingTable[uint32(dst)] = path[i+1]
	}
	return path, dst
}

// figure19c measures ISL utilization under a saturating flow.
func figure19c(tb *dataPlaneTestbed, gw int, route intent.Route) (*metrics.Table, error) {
	// Re-create a small copy of the first two hops with a slow link so the
	// DES event count stays small while utilization math is exact.
	net := dataplane.NewNetwork()
	net.ISLRateBps = 8e6 // 8 Mbit/s
	net.AddSatellite(0, 100)
	net.AddSatellite(1, 200)
	l := net.Connect(0, 1, 0.005)
	delivered := 0
	net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) { delivered++ }
	// Saturate for 2 s: packet of 1,000 B takes 1 ms; send 2,200 to
	// overrun slightly (drops expected at the 4,096 queue? no — stay under).
	pktSize := 1000 - dataplane.BaseHeaderLen - 8 // payload so wire ≈ 1,000 B
	for i := 0; i < 2000; i++ {
		p, err := dataplane.NewGeoPacket(0, []int{200}, 4, uint32(i), make([]byte, pktSize))
		if err != nil {
			return nil, err
		}
		net.Inject(0, p)
	}
	net.Sim.Run(2.5)
	tab := metrics.NewTable("Figure 19c: ISL utilization under full-speed forwarding",
		"metric", "value", "paper")
	tab.AddRow("bottleneck utilization", fmt.Sprintf("%.1f%%", 100*l.Utilization()), "≈100%")
	tab.AddRow("packets delivered", delivered, "-")
	tab.AddRow("drops", l.Drops, "0 with in-kernel SRv6")
	return tab, nil
}

// figure19d measures the delivery gap when the primary ISL fails mid-flow:
// TinyLEO's local anycast failover versus the legacy plane waiting for the
// control plane (83.8 ms average repair, Figure 17d).
func figure19d(scale Scale) (*metrics.Table, error) {
	tb, err := newDataPlaneTestbed(scale)
	if err != nil {
		return nil, err
	}
	src, _, route, ok := tb.findWorkingRoute(2)
	if !ok {
		return nil, fmt.Errorf("experiments: no deliverable route for 19d")
	}

	measureGap := func(legacy bool) (float64, error) {
		tb2, err := newDataPlaneTestbed(scale)
		if err != nil {
			return 0, err
		}
		gw2, gwOK2 := tb2.gatewayOf(src)
		if !gwOK2 {
			return 0, fmt.Errorf("experiments: 19d source cell has no gateway")
		}
		var legacyDst int
		if legacy {
			_, legacyDst = tb2.installLegacyRoute(gw2, route)
		}
		var deliveries []float64
		tb2.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) {
			deliveries = append(deliveries, tb2.Net.Sim.Now())
		}
		// Find the first-hop link the flow uses and schedule its failure.
		probe, _ := dataplane.NewGeoPacket(uint32(gw2), route.Cells, 5, 0, nil)
		var firstHop [2]int
		tb2.Net.OnDrop = nil
		saveDeliver := tb2.Net.OnDeliver
		tb2.Net.OnDeliver = func(s *dataplane.Satellite, p *dataplane.Packet) {
			if len(p.HopTrace) >= 2 {
				firstHop = [2]int{p.HopTrace[0], p.HopTrace[1]}
			}
			saveDeliver(s, p)
		}
		tb2.Net.Inject(gw2, probe)
		tb2.Net.Sim.Run(tb2.Net.Sim.Now() + 5)
		deliveries = nil
		tb2.Net.OnDeliver = saveDeliver

		start := tb2.Net.Sim.Now()
		failAt := start + 0.050
		link := tb2.Net.Link(firstHop[0], firstHop[1])
		if link == nil {
			return 0, fmt.Errorf("experiments: first-hop link not found")
		}
		tb2.Net.Sim.Schedule(failAt-start, func() { link.Down() })
		if legacy {
			// Control-plane repair: after the Figure-17d RTT the table is
			// fixed and buffered packets flushed.
			tb2.Net.Sim.Schedule(failAt-start+0.0838, func() {
				link.Up() // repaired (replacement ISL modeled as same link)
				tb2.Net.FlushBuffers()
			})
		}
		// 10 ms packet cadence for 200 ms.
		for i := 0; i < 20; i++ {
			i := i
			tb2.Net.Sim.Schedule(float64(i)*0.010, func() {
				if legacy {
					lp := &dataplane.Packet{Base: dataplane.BaseHeader{
						Ver: dataplane.Version, HopLimit: 64, FlowID: uint32(legacyDst),
					}}
					lp.SentAt = tb2.Net.Sim.Now()
					tb2.Net.Inject(gw2, lp)
					return
				}
				gp, _ := dataplane.NewGeoPacket(uint32(gw2), route.Cells, 6, uint32(i), nil)
				tb2.Net.Inject(gw2, gp)
			})
		}
		tb2.Net.Sim.Run(start + 1)
		if len(deliveries) < 2 {
			return 0, fmt.Errorf("experiments: 19d flow (legacy=%v) delivered %d packets", legacy, len(deliveries))
		}
		gap := 0.0
		for i := 1; i < len(deliveries); i++ {
			if d := deliveries[i] - deliveries[i-1]; d > gap {
				gap = d
			}
		}
		return gap * 1e3, nil
	}

	tinyGap, err := measureGap(false)
	if err != nil {
		return nil, err
	}
	legacyGap, err := measureGap(true)
	if err != nil {
		return nil, err
	}
	tab := metrics.NewTable("Figure 19d: rerouting under random ISL failures",
		"plane", "max delivery gap (ms)", "paper")
	tab.AddRow("TinyLEO local anycast reroute", fmt.Sprintf("%.1f", tinyGap), "13.6-44.3 ms")
	tab.AddRow("legacy (waits for control plane)", fmt.Sprintf("%.1f", legacyGap), "≥ 83.8 ms repair")
	return tab, nil
}

// connectComponents adds the shortest visible ISL between connected
// components until the constellation graph is connected (or no visible
// cross-component pair exists). Returns the augmented link list.
func connectComponents(sats []orbit.Elements, links []mpc.Link, t float64) []mpc.Link {
	pos := make([]geom.Vec3, len(sats))
	for i, e := range sats {
		pos[i] = e.PositionECI(t)
	}
	isl := orbit.DefaultISLParams
	for {
		comp := componentLabels(len(sats), links)
		// Find the closest visible pair across different components.
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for i := 0; i < len(sats); i++ {
			for j := i + 1; j < len(sats); j++ {
				if comp[i] == comp[j] {
					continue
				}
				if d := pos[i].Dist(pos[j]); d < bestD && isl.Visible(pos[i], pos[j]) {
					bestA, bestB, bestD = i, j, d
				}
			}
		}
		if bestA < 0 {
			return links // connected, or unbridgeable at this instant
		}
		links = append(links, mpc.MakeLink(bestA, bestB))
	}
}

func componentLabels(n int, links []mpc.Link) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range links {
		a, b := find(l[0]), find(l[1])
		if a != b {
			parent[a] = b
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = find(i)
	}
	return out
}
