package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/orbit"
	"repro/internal/texture"
)

// SparsifyOutcome is the full result bundle of one demand scenario's
// sparsification run (the backbone of Figures 13, 14, and 15).
type SparsifyOutcome struct {
	Scenario string
	Demand   *demand.Demand
	Lib      *texture.Library

	Starlink       []orbit.Elements // the reference uniform constellation
	StarlinkSupply []float64

	TinyLEO        *core.Result
	TinyLEORelaxed *core.Result
	MegaReduce     *baseline.ShellReduceResult // nil if the shrinker found no feasible start
	ILP            *baseline.ILPResult
}

// Scenarios returns the paper's three demand fields (Figure 13) at the
// given scale, static by default (diurnal handled in Figure15d).
func Scenarios(scale Scale) []*demand.Demand {
	opt := scale.ScenarioOptions()
	return []*demand.Demand{
		demand.StarlinkCustomers(opt),
		demand.InternetBackbone(opt),
		demand.LatinAmerica(opt),
	}
}

// RunSparsification runs the Figure 15 pipeline for every scenario.
func RunSparsification(scale Scale, lib *texture.Library) ([]*SparsifyOutcome, error) {
	// Reference constellation: the Starlink-like multi-shell layout,
	// proportionally slimmed at Small scale.
	starlink := scaledShellSatellites(baseline.StarlinkShells(), scale)
	supCfg := baseline.SupplyConfig{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		SubSamples: scale.SubSamples, Parallelism: scale.Parallelism,
	}
	starlinkSupply := baseline.Supply(supCfg, starlink)

	var outs []*SparsifyOutcome
	for _, dem := range Scenarios(scale) {
		out := &SparsifyOutcome{
			Scenario: dem.Name, Demand: dem, Lib: lib,
			Starlink: starlink, StarlinkSupply: starlinkSupply,
		}
		// The paper's premise: the mega-constellation serves this demand;
		// anchor the demand scale to its supply at ε, then keep 15%
		// operational headroom (real constellations are not sized exactly
		// to the demand knee; without slack no baseline could shrink at
		// all and the comparison would be vacuous).
		dem.CalibrateToSupply(starlinkSupply, scale.Epsilon)
		dem.Scale(0.85)

		var err error
		out.TinyLEO, err = core.Sparsify(core.Problem{
			Library: lib, Demand: dem.Y, Epsilon: scale.Epsilon,
			Parallelism: scale.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("sparsify %s: %w", dem.Name, err)
		}
		out.TinyLEORelaxed, err = core.Sparsify(core.Problem{
			Library: lib, Demand: dem.Y, Epsilon: scale.RelaxedEpsilon,
			Parallelism: scale.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("sparsify relaxed %s: %w", dem.Name, err)
		}

		// MegaReduce: iteratively shrink the same multi-shell layout while
		// it keeps the availability target (plane-uniform moves only).
		if mr, err := baseline.MegaReduceShells(baseline.ShellReduceConfig{
			Supply: supCfg, Demand: dem.Y, Epsilon: scale.Epsilon,
			Shells: scaledShells(scale),
		}); err == nil {
			out.MegaReduce = mr
		}

		// Truncated exact ILP (the Gurobi stand-in).
		out.ILP, err = baseline.SolveILP(baseline.ILPConfig{
			Library: lib, Demand: dem.Y, Epsilon: scale.Epsilon,
			Budget: time.Duration(scale.ILPBudgetSeconds * float64(time.Second)),
		})
		if err != nil {
			return nil, fmt.Errorf("ilp %s: %w", dem.Name, err)
		}
		outs = append(outs, out)
	}
	return outs, nil
}

// feasibleWalkerStart searches for the smallest square-ish Walker layout
// meeting the availability target, growing from the reference size.
func feasibleWalkerStart(supCfg baseline.SupplyConfig, dem []float64, eps float64, refSats int) (baseline.WalkerConfig, bool) {
	side := int(math.Ceil(math.Sqrt(float64(refSats))))
	for grow := 0; grow < 6; grow++ {
		// A 53° shell cannot reach polar demand, so also try higher
		// inclinations at each size (MegaReduce's inclination fine-tuning).
		for _, inc := range []float64{53, 70, 85} {
			w := baseline.WalkerConfig{
				InclinationDeg: inc, AltitudeKm: 550,
				Planes: side + grow, SatsPerPlane: side + grow, PhasingF: 1,
			}
			if baseline.Availability(baseline.Supply(supCfg, w.Satellites()), dem) >= eps {
				return w, true
			}
		}
	}
	return baseline.WalkerConfig{}, false
}

// Figure13 summarizes the three demand scenarios.
func Figure13(outs []*SparsifyOutcome) *metrics.Table {
	tab := metrics.NewTable("Figure 13: LEO network broadband demands",
		"scenario", "total demand (sat-units/slot)", "cells with demand", "70% demand in surface %")
	for _, o := range outs {
		tab.AddRow(o.Scenario,
			fmt.Sprintf("%.0f", o.Demand.Total()/float64(o.Demand.Slots)),
			o.Demand.NonZeroCells(),
			fmt.Sprintf("%.1f%%", 100*o.Demand.SpatialConcentration(0.7)))
	}
	return tab
}

// Figure14 summarizes TinyLEO's sparse layouts (the map views of Fig. 14).
func Figure14(outs []*SparsifyOutcome) *metrics.Table {
	tab := metrics.NewTable("Figure 14: TinyLEO on-demand sparse LEO networks",
		"scenario", "satellites", "tracks used", "library tracks", "availability")
	for _, o := range outs {
		tab.AddRow(o.Scenario, o.TinyLEO.Satellites, len(o.TinyLEO.ChosenTracks()),
			o.Lib.NumTracks(), fmt.Sprintf("%.4f", o.TinyLEO.Availability))
	}
	return tab
}

// Figure15a is the headline comparison: constellation sizes.
func Figure15a(outs []*SparsifyOutcome) *metrics.Table {
	tab := metrics.NewTable("Figure 15a: total LEO satellites to meet demand",
		"scenario", "TinyLEO", "ILP(truncated)", "MegaReduce", "Starlink-like", "compression")
	for _, o := range outs {
		mr := "-"
		if o.MegaReduce != nil {
			mr = fmt.Sprintf("%d", o.MegaReduce.Satellites)
		}
		ilp := fmt.Sprintf("%d", o.ILP.Satellites)
		if o.ILP.Truncated {
			ilp += "*"
		}
		tab.AddRow(o.Scenario, o.TinyLEO.Satellites, ilp, mr, len(o.Starlink),
			fmt.Sprintf("%.1fx", float64(len(o.Starlink))/float64(maxI(1, o.TinyLEO.Satellites))))
	}
	return tab
}

// Figure15b compares satellite waste across solutions.
func Figure15b(outs []*SparsifyOutcome) *metrics.Table {
	tab := metrics.NewTable("Figure 15b: reduction of satellite waste (waste ratio, lower is better)",
		"scenario", "TinyLEO", "MegaReduce", "Starlink-like")
	for _, o := range outs {
		supCfg := baseline.SupplyConfig{
			Grid: o.Lib.Grid, Slots: o.Lib.Slots, SlotSeconds: o.Lib.SlotSeconds,
		}
		tinySupply := o.Lib.Supply(o.TinyLEO.X)
		tinyWaste := baseline.WasteRatio(tinySupply, o.Demand.Y)
		mrWaste := "-"
		if o.MegaReduce != nil {
			mrWaste = fmt.Sprintf("%.2f", baseline.WasteRatio(
				baseline.Supply(supCfg, o.MegaReduce.Remaining), o.Demand.Y))
		}
		slWaste := baseline.WasteRatio(o.StarlinkSupply, o.Demand.Y)
		tab.AddRow(o.Scenario, fmt.Sprintf("%.2f", tinyWaste), mrWaste, fmt.Sprintf("%.2f", slWaste))
	}
	return tab
}

// Figure15c renders the availability-vs-size curves (diminishing returns)
// from the solver traces, plus the relaxed-ε sizes.
func Figure15c(outs []*SparsifyOutcome) *metrics.Table {
	tab := metrics.NewTable("Figure 15c: availability vs number of satellites",
		"scenario", "satellites", "availability")
	for _, o := range outs {
		tr := o.TinyLEO.Trace
		step := maxI(1, len(tr)/8)
		for i := 0; i < len(tr); i += step {
			tab.AddRow(o.Scenario, tr[i].Satellites, fmt.Sprintf("%.4f", tr[i].Availability))
		}
		if len(tr) > 0 {
			last := tr[len(tr)-1]
			tab.AddRow(o.Scenario, last.Satellites, fmt.Sprintf("%.4f", last.Availability))
		}
		tab.AddRow(o.Scenario+" (relaxed ε)", o.TinyLEORelaxed.Satellites,
			fmt.Sprintf("%.4f", o.TinyLEORelaxed.Availability))
	}
	return tab
}

// Figure15d quantifies the diurnal saving: satellites needed for static
// peak demand versus diurnal demand (paper: 18.5% fewer; 26% with relaxed
// availability).
func Figure15d(scale Scale, lib *texture.Library) (*metrics.Table, error) {
	opt := scale.ScenarioOptions()
	static := demand.StarlinkCustomers(opt)
	dOpt := opt
	model := demand.DefaultDiurnal
	dOpt.Diurnal = &model
	dynamic := demand.StarlinkCustomers(dOpt)

	// Anchor both to the same reference supply.
	starlink := scaledShellSatellites(baseline.StarlinkShells(), scale)
	supCfg := baseline.SupplyConfig{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		SubSamples: scale.SubSamples, Parallelism: scale.Parallelism,
	}
	sup := baseline.Supply(supCfg, starlink)
	scaleFactor := static.CalibrateToSupply(sup, scale.Epsilon)
	dynamic.Scale(scaleFactor) // same per-user demand, diurnally modulated

	tab := metrics.NewTable("Figure 15d: impact of diurnal user dynamics",
		"demand model", "ε", "satellites", "saving vs static")
	type run struct {
		name string
		dem  *demand.Demand
		eps  float64
	}
	runs := []run{
		{"static peak", static, scale.Epsilon},
		{"diurnal", dynamic, scale.Epsilon},
		{"static peak", static, scale.RelaxedEpsilon},
		{"diurnal", dynamic, scale.RelaxedEpsilon},
	}
	baselineSats := map[float64]int{}
	for _, r := range runs {
		res, err := core.Sparsify(core.Problem{
			Library: lib, Demand: r.dem.Y, Epsilon: r.eps, Parallelism: scale.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("fig15d %s: %w", r.name, err)
		}
		saving := "-"
		if r.name == "static peak" {
			baselineSats[r.eps] = res.Satellites
		} else if b := baselineSats[r.eps]; b > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*float64(b-res.Satellites)/float64(b))
		}
		tab.AddRow(r.name, fmt.Sprintf("%.3f", r.eps), res.Satellites, saving)
	}
	return tab, nil
}

// Figure1Maps renders the Figure 1/13/14 world maps as ASCII: the demand
// field and TinyLEO's matched supply for each scenario.
func Figure1Maps(outs []*SparsifyOutcome) string {
	var sb strings.Builder
	for _, o := range outs {
		g := o.Lib.Grid
		m := g.NumCells()
		sb.WriteString(fmt.Sprintf("--- %s: demand (peak slot) ---\n", o.Scenario))
		sb.WriteString(geo.RenderMap(g, func(cell int) float64 {
			return o.Demand.At(0, cell)
		}))
		supply := o.Lib.Supply(o.TinyLEO.X)
		sb.WriteString(fmt.Sprintf("--- %s: TinyLEO supply (slot 0, %d satellites) ---\n",
			o.Scenario, o.TinyLEO.Satellites))
		sb.WriteString(geo.RenderMap(g, func(cell int) float64 {
			return supply[cell%m]
		}))
	}
	return sb.String()
}
