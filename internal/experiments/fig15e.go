package experiments

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// Figure15e characterizes the orbital-parameter diversity of TinyLEO's
// chosen layout and scores each parameter's importance to the
// supply-demand match. The paper trains a random forest [69]; this
// reproduction uses a solver-agnostic equivalent — the Jensen-Shannon
// divergence between each parameter's distribution among *chosen*
// satellites and its uniform distribution across the candidate library. A
// parameter the matching exploits (β for latitudes, α for longitudes) is
// selected highly non-uniformly; a parameter that barely matters (T, per
// the paper) stays near the library's distribution. Scores are normalized
// to sum to 100%.
func Figure15e(outs []*SparsifyOutcome) []*metrics.Table {
	imp := metrics.NewTable("Figure 15e: orbital parameter importance (%)",
		"scenario", "right ascension α", "inclination β", "period T")
	dist := metrics.NewTable("Figure 15e (right): chosen-parameter distributions",
		"scenario", "parameter", "bin", "share %")
	for _, o := range outs {
		alpha := parameterDivergence(o, func(j int) float64 { return o.Lib.Tracks[j].RAANDeg() }, 12)
		beta := parameterDivergence(o, func(j int) float64 { return o.Lib.Tracks[j].InclinationDeg() }, 12)
		period := parameterDivergence(o, func(j int) float64 { return o.Lib.Tracks[j].Elements.Period() / 60 }, 12)
		sum := alpha + beta + period
		if sum == 0 {
			sum = 1
		}
		imp.AddRow(o.Scenario,
			fmt.Sprintf("%.1f", 100*alpha/sum),
			fmt.Sprintf("%.1f", 100*beta/sum),
			fmt.Sprintf("%.1f", 100*period/sum))

		for _, p := range []struct {
			name string
			f    func(j int) float64
			bins int
		}{
			{"α (deg)", func(j int) float64 { return o.Lib.Tracks[j].RAANDeg() }, 8},
			{"β (deg)", func(j int) float64 { return o.Lib.Tracks[j].InclinationDeg() }, 8},
		} {
			hist, edges := chosenHistogram(o, p.f, p.bins)
			total := 0.0
			for _, h := range hist {
				total += h
			}
			if total == 0 {
				continue
			}
			for b, h := range hist {
				if h == 0 {
					continue
				}
				dist.AddRow(o.Scenario, p.name,
					fmt.Sprintf("[%.0f,%.0f)", edges[b], edges[b+1]),
					fmt.Sprintf("%.1f", 100*h/total))
			}
		}
	}
	return []*metrics.Table{imp, dist}
}

// chosenHistogram bins the feature over chosen satellites, weighted by
// satellite count.
func chosenHistogram(o *SparsifyOutcome, f func(j int) float64, bins int) ([]float64, []float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for j := range o.Lib.Tracks {
		v := f(j)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	edges := make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	hist := make([]float64, bins)
	for j, x := range o.TinyLEO.X {
		if x == 0 {
			continue
		}
		b := int(float64(bins) * (f(j) - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		hist[b] += float64(x)
	}
	return hist, edges
}

// parameterDivergence computes the Jensen-Shannon divergence between the
// feature's chosen-weighted distribution and its library distribution.
func parameterDivergence(o *SparsifyOutcome, f func(j int) float64, bins int) float64 {
	chosen, _ := chosenHistogram(o, f, bins)
	libHist := make([]float64, bins)
	lo, hi := math.Inf(1), math.Inf(-1)
	for j := range o.Lib.Tracks {
		v := f(j)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	for j := range o.Lib.Tracks {
		b := int(float64(bins) * (f(j) - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		libHist[b]++
	}
	return jsDivergence(normalize(chosen), normalize(libHist))
}

func normalize(h []float64) []float64 {
	s := 0.0
	for _, v := range h {
		s += v
	}
	if s == 0 {
		return h
	}
	out := make([]float64, len(h))
	for i, v := range h {
		out[i] = v / s
	}
	return out
}

// jsDivergence is the Jensen-Shannon divergence (base 2, in [0,1]).
func jsDivergence(p, q []float64) float64 {
	kl := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			if a[i] > 0 && b[i] > 0 {
				s += a[i] * math.Log2(a[i]/b[i])
			}
		}
		return s
	}
	m := make([]float64, len(p))
	for i := range m {
		m[i] = (p[i] + q[i]) / 2
	}
	return 0.5*kl(p, m) + 0.5*kl(q, m)
}
