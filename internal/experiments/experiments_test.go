package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/texture"
)

// Shared fixtures: the Small-scale library and sparsification outcomes are
// expensive enough to build once per test binary.
var (
	libOnce sync.Once
	libVal  *texture.Library
	libErr  error

	outsOnce sync.Once
	outsVal  []*SparsifyOutcome
	outsErr  error
)

func smallLib(t *testing.T) *texture.Library {
	t.Helper()
	libOnce.Do(func() { libVal, libErr = Small.BuildLibrary() })
	if libErr != nil {
		t.Fatal(libErr)
	}
	return libVal
}

func smallOuts(t *testing.T) []*SparsifyOutcome {
	t.Helper()
	lib := smallLib(t)
	outsOnce.Do(func() { outsVal, outsErr = RunSparsification(Small, lib) })
	if outsErr != nil {
		t.Fatal(outsErr)
	}
	return outsVal
}

func renderAll(t *testing.T, tabs ...*metrics.Table) string {
	t.Helper()
	var sb strings.Builder
	for _, tab := range tabs {
		if tab == nil {
			t.Fatal("nil table")
		}
		tab.Render(&sb)
	}
	out := sb.String()
	t.Log("\n" + out)
	return out
}

func TestScaleByName(t *testing.T) {
	if s, ok := ScaleByName("small"); !ok || s.Name != "small" {
		t.Error("small scale missing")
	}
	if s, ok := ScaleByName(""); !ok || s.Name != "small" {
		t.Error("default scale missing")
	}
	if s, ok := ScaleByName("paper"); !ok || s.Name != "paper" {
		t.Error("paper scale missing")
	}
	if _, ok := ScaleByName("bogus"); ok {
		t.Error("bogus scale resolved")
	}
}

func TestTable1(t *testing.T) {
	tab := Table1(smallLib(t))
	out := renderAll(t, tab)
	if !strings.Contains(out, "total candidate tracks") {
		t.Error("missing track count row")
	}
	if tab.NumRows() < 5 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestFigure3(t *testing.T) {
	tabs := Figure3(Small)
	out := renderAll(t, tabs...)
	if !strings.Contains(out, "70%") {
		t.Error("missing concentration stats")
	}
}

func TestFigure4(t *testing.T) {
	tabs := Figure4(Small)
	out := renderAll(t, tabs...)
	if !strings.Contains(out, "waste") {
		t.Error("missing waste stats")
	}
}

func TestFigure9(t *testing.T) {
	outs := smallOuts(t)
	tiny := RealizeConstellation(outs[0].Lib, outs[0].TinyLEO)
	uniform := baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 550,
		Planes: isqrt(len(tiny)), SatsPerPlane: isqrt(len(tiny)), PhasingF: 1,
	}.Satellites()
	tabs := Figure9(Small, tiny, uniform)
	renderAll(t, tabs...)
	if tabs[0].NumRows() != Small.ControlSlots {
		t.Errorf("fig9a rows = %d", tabs[0].NumRows())
	}
	if tabs[1].NumRows() != Small.ControlSlots-1 {
		t.Errorf("fig9b rows = %d", tabs[1].NumRows())
	}
}

func isqrt(n int) int {
	i := 1
	for i*i < n {
		i++
	}
	return i
}

func TestRunSparsificationShapes(t *testing.T) {
	outs := smallOuts(t)
	if len(outs) != 3 {
		t.Fatalf("scenarios = %d", len(outs))
	}
	for _, o := range outs {
		if o.TinyLEO.Satellites == 0 {
			t.Errorf("%s: empty TinyLEO constellation", o.Scenario)
		}
		if o.TinyLEO.Availability < Small.Epsilon-1e-9 {
			t.Errorf("%s: availability %v below ε", o.Scenario, o.TinyLEO.Availability)
		}
		// Headline result: TinyLEO compresses the mega-constellation.
		if o.TinyLEO.Satellites >= len(o.Starlink) {
			t.Errorf("%s: TinyLEO (%d) did not compress vs Starlink-like (%d)",
				o.Scenario, o.TinyLEO.Satellites, len(o.Starlink))
		}
		// Relaxed availability needs no more satellites.
		if o.TinyLEORelaxed.Satellites > o.TinyLEO.Satellites {
			t.Errorf("%s: relaxed ε used more satellites", o.Scenario)
		}
		// MegaReduce stays uniform, so it cannot beat TinyLEO here.
		if o.MegaReduce != nil && o.MegaReduce.Satellites < o.TinyLEO.Satellites {
			t.Errorf("%s: MegaReduce (%d) beat TinyLEO (%d) on uneven demand",
				o.Scenario, o.MegaReduce.Satellites, o.TinyLEO.Satellites)
		}
	}
	// Regional demand compresses hardest (paper: 6.4x vs 2.0-3.9x).
	var regional, backbone *SparsifyOutcome
	for _, o := range outs {
		switch o.Scenario {
		case "latin-america":
			regional = o
		case "internet-backbone":
			backbone = o
		}
	}
	if regional == nil || backbone == nil {
		t.Fatal("scenario names changed")
	}
	cr := func(o *SparsifyOutcome) float64 {
		return float64(len(o.Starlink)) / float64(o.TinyLEO.Satellites)
	}
	if cr(regional) <= cr(backbone) {
		t.Errorf("regional compression (%.1fx) should exceed backbone (%.1fx)",
			cr(regional), cr(backbone))
	}
}

func TestFigure13_14_15Tables(t *testing.T) {
	outs := smallOuts(t)
	out := renderAll(t, Figure13(outs), Figure14(outs), Figure15a(outs), Figure15b(outs), Figure15c(outs))
	for _, want := range []string{"Figure 13", "Figure 14", "Figure 15a", "Figure 15b", "Figure 15c", "starlink-customers", "compression"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFigure15d(t *testing.T) {
	tab, err := Figure15d(Small, smallLib(t))
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if !strings.Contains(out, "diurnal") {
		t.Error("missing diurnal rows")
	}
	if tab.NumRows() != 4 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestFigure15e(t *testing.T) {
	outs := smallOuts(t)
	tabs := Figure15e(outs)
	out := renderAll(t, tabs...)
	if !strings.Contains(out, "inclination β") {
		t.Error("missing importance columns")
	}
}

func TestFigure16(t *testing.T) {
	tabs, snaps, err := Figure16(Small)
	if err != nil {
		t.Fatal(err)
	}
	renderAll(t, tabs...)
	if len(snaps) != Small.ControlSlots {
		t.Errorf("snapshots = %d", len(snaps))
	}
	added, removed := ISLChurnSummary(snaps)
	if added+removed == 0 {
		t.Error("topology never changed across slots; LEO dynamics missing")
	}
}

func TestFigure17(t *testing.T) {
	tabs, err := Figure17(Small)
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tabs...)
	if !strings.Contains(out, "TS-SDN") {
		t.Error("missing TS-SDN rows")
	}
}

func TestFigure17d(t *testing.T) {
	tab, err := Figure17d(Small, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if !strings.Contains(out, "total") {
		t.Error("missing total row")
	}
}

func TestFigure18(t *testing.T) {
	tab, err := Figure18(Small)
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if !strings.Contains(out, "shortest path") {
		t.Error("missing shortest-path policy")
	}
	if strings.Contains(out, "false") {
		t.Error("some policy route failed to deliver")
	}
}

func TestFigure19a(t *testing.T) {
	outs := smallOuts(t)
	var backbone *SparsifyOutcome
	for _, o := range outs {
		if o.Scenario == "internet-backbone" {
			backbone = o
		}
	}
	tab, err := Figure19a(Small, backbone)
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if !strings.Contains(out, "stretch p90") {
		t.Error("missing stretch stats")
	}
}

func TestFigure19bcd(t *testing.T) {
	tabs, err := Figure19bcd(Small)
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tabs...)
	for _, want := range []string{"RTT", "utilization", "reroute"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q section", want)
		}
	}
}

func TestHorizonThroughput(t *testing.T) {
	tab, err := HorizonThroughput(Small, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "parallel") {
		t.Error("expected sequential and parallel rows")
	}
	if n := len(tab.BenchEntries()); n == 0 {
		t.Error("no bench entries emitted")
	}
}
