package experiments

import (
	"math"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/geom"
	"repro/internal/mpc"
	"repro/internal/orbit"
	"repro/internal/routing"
	"repro/internal/texture"
)

// RealizeConstellation turns a sparsifier result into concrete satellites:
// x_j satellites on track j. Same-slot duplicates are phase-jittered by a
// few degrees so no two satellites coincide (DESIGN.md modeling note).
func RealizeConstellation(lib *texture.Library, res *core.Result) []orbit.Elements {
	var sats []orbit.Elements
	for j, x := range res.X {
		for k := 0; k < x; k++ {
			e := lib.Tracks[j].Elements
			e.Phase = geom.NormalizeAngle(e.Phase + geom.Deg2Rad(3*float64(k)))
			sats = append(sats, e)
		}
	}
	return sats
}

// NetworkFromSnapshot builds an emulated data plane from an MPC snapshot:
// satellites with their home cells, ISLs with physical propagation delays,
// and the per-cell gateway rings.
func NetworkFromSnapshot(snap *mpc.Snapshot, sats []orbit.Elements) *dataplane.Network {
	n := dataplane.NewNetwork()
	// A satellite's forwarding identity is the cell whose gateway duty it
	// holds (satellites cover many cells, but hold at most one gateway
	// assignment; non-gateway satellites have no ISLs and are omitted).
	// Gateway keys sorted: a satellite can hold duty under more than one
	// edge key (repair can double-book), and the first key seen decides
	// its home cell — iterating the map here made the emulated network
	// differ run to run.
	gwKeys := make([][2]int, 0, len(snap.Gateways))
	for key := range snap.Gateways {
		gwKeys = append(gwKeys, key)
	}
	sort.Slice(gwKeys, func(i, j int) bool {
		if gwKeys[i][0] != gwKeys[j][0] {
			return gwKeys[i][0] < gwKeys[j][0]
		}
		return gwKeys[i][1] < gwKeys[j][1]
	})
	for _, key := range gwKeys {
		for _, s := range snap.Gateways[key] {
			if n.Sats[s] == nil {
				n.AddSatellite(s, key[0])
			}
		}
	}
	addLink := func(l mpc.Link) {
		if n.Sats[l[0]] == nil || n.Sats[l[1]] == nil {
			return
		}
		if n.Link(l[0], l[1]) != nil {
			return
		}
		d := orbit.PropagationDelay(
			sats[l[0]].PositionECI(snap.Time), sats[l[1]].PositionECI(snap.Time))
		n.Connect(l[0], l[1], d)
	}
	for _, l := range snap.InterLinks {
		addLink(l)
	}
	for _, l := range snap.RingLinks {
		addLink(l)
	}
	// Install ring successor pointers per cell by walking the ring links.
	cellsSeen := map[int]bool{}
	for key := range snap.Gateways {
		cellsSeen[key[0]] = true
	}
	cells := make([]int, 0, len(cellsSeen))
	for cell := range cellsSeen {
		cells = append(cells, cell)
	}
	sort.Ints(cells)
	for _, cell := range cells {
		ring := ringOrder(n, snap, cell)
		if len(ring) >= 2 {
			n.SetRing(ring)
		}
	}
	return n
}

// ringOrder reconstructs the cyclic order of a cell's ring from RingLinks,
// using the network's gateway-cell assignment for membership.
func ringOrder(n *dataplane.Network, snap *mpc.Snapshot, cell int) []int {
	inCell := map[int]bool{}
	for id, s := range n.Sats {
		if s.Cell == cell {
			inCell[id] = true
		}
	}
	adj := map[int][]int{}
	for _, l := range snap.RingLinks {
		if inCell[l[0]] && inCell[l[1]] {
			adj[l[0]] = append(adj[l[0]], l[1])
			adj[l[1]] = append(adj[l[1]], l[0])
		}
	}
	if len(adj) < 2 {
		return nil
	}
	// Walk the cycle (or chain) starting from the smallest member.
	start := -1
	for s := range adj {
		if start == -1 || s < start {
			start = s
		}
	}
	order := []int{start}
	prev, cur := -1, start
	for {
		next := -1
		for _, nb := range adj[cur] {
			if nb != prev {
				next = nb
				break
			}
		}
		if next == -1 || next == start {
			break
		}
		order = append(order, next)
		prev, cur = cur, next
		if len(order) > len(adj) {
			break // safety against malformed rings
		}
	}
	return order
}

// StarlinkGridTopology builds the standard "+Grid" motif of Figure 19a for
// a multi-shell Walker constellation: each satellite links its two
// intra-plane neighbors and its nearest same-shell inter-plane neighbor.
// Returns the satellites and their links.
func StarlinkGridTopology(shells []baseline.Shell) ([]orbit.Elements, []mpc.Link) {
	var sats []orbit.Elements
	var links []mpc.Link
	base := 0
	for _, sh := range shells {
		w := sh.Config
		n := w.NumSatellites()
		sats = append(sats, w.Satellites()...)
		id := func(p, s int) int {
			return base + ((p+w.Planes)%w.Planes)*w.SatsPerPlane + (s+w.SatsPerPlane)%w.SatsPerPlane
		}
		for p := 0; p < w.Planes; p++ {
			for s := 0; s < w.SatsPerPlane; s++ {
				// Two intra-plane neighbors (emit the forward one only).
				links = append(links, mpc.MakeLink(id(p, s), id(p, s+1)))
				// One inter-plane neighbor (next plane, same slot).
				if w.Planes > 1 {
					links = append(links, mpc.MakeLink(id(p, s), id(p+1, s)))
				}
			}
		}
		base += n
	}
	// Deduplicate (wrap-around can repeat links on tiny shells).
	seen := map[mpc.Link]bool{}
	var out []mpc.Link
	for _, l := range links {
		if l[0] != l[1] && !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return sats, out
}

// PathDelayOverLinks computes the propagation delay (s) of the shortest
// path between two satellites over the given link set at time t; the bool
// reports reachability.
func PathDelayOverLinks(sats []orbit.Elements, links []mpc.Link, src, dst int, t float64) (float64, int, bool) {
	pos := make([]geom.Vec3, len(sats))
	for i, e := range sats {
		pos[i] = e.PositionECI(t)
	}
	g := newGraph(len(sats))
	for _, l := range links {
		g.AddBiEdge(l[0], l[1], pos[l[0]].Dist(pos[l[1]]))
	}
	path, dist, ok := g.ShortestPath(src, dst)
	if !ok {
		return math.Inf(1), 0, false
	}
	return dist / geom.C, len(path) - 1, true
}

// newGraph aliases routing.NewGraph for brevity in this package.
func newGraph(n int) *routing.Graph { return routing.NewGraph(n) }
