package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"math"

	"repro/internal/baseline"
	"repro/internal/intent"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/orbit"
	"repro/internal/tssdn"
)

// controlConstellation builds the shared satellite set for the
// control/data-plane experiments. At small scales a slimmed multi-shell
// layout cannot guarantee any cell a minimum satellite count, so the
// testbed uses a dense single-shell Walker at 1,200 km whose wide
// footprints make the §4.2 geographic invariant hold with few satellites;
// at Paper scale this converges to a mega-constellation-sized network.
func controlConstellation(scale Scale) []orbit.Elements {
	side := int(math.Sqrt(float64(scale.ControlSats)))
	if side < 2 {
		side = 2
	}
	return baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 1200,
		Planes: side, SatsPerPlane: side, PhasingF: 1,
	}.Satellites()
}

// controlIntent derives an enforceable mesh intent from what the
// constellation actually guarantees over the horizon (§4.2's geographic
// invariant). The mesh is grown from the best-guaranteed cell and capped
// so its gateway demand (2 satellites per intent edge) stays within the
// constellation's budget of one gateway terminal per satellite.
func controlIntent(scale Scale, sats []orbit.Elements) (*intent.Topology, error) {
	g := scale.Grid()
	supply := baseline.Supply(baseline.SupplyConfig{
		Grid: g, Slots: scale.ControlSlots,
		SlotSeconds: scale.ControlDt, SubSamples: 1,
		Coverage: controlCoverage(), Parallelism: scale.Parallelism,
		// The §4.2 invariant counts visible satellites per cell.
		CountSatellites: true,
	}, sats)
	guaranteed := intent.GuaranteedFromSupply(g, scale.ControlSlots, supply)
	qualified := map[int]int{}
	seed, bestG := -1, 0
	for u := 0; u < g.NumCells(); u++ { // deterministic scan order
		n := guaranteed[u]
		if n >= 3 {
			qualified[u] = n
			if n > bestG {
				seed, bestG = u, n
			}
		}
	}
	if seed < 0 {
		return nil, fmt.Errorf("experiments: no cells qualify for the control intent")
	}
	// Grow a connected region: a K-cell mesh has ≈2K edges needing ≈4K
	// gateway satellites; keep 4K well under the satellite count.
	maxCells := maxI(6, len(sats)/32)
	region := map[int]int{seed: qualified[seed]}
	frontier := []int{seed}
	for len(frontier) > 0 && len(region) < maxCells {
		u := frontier[0]
		frontier = frontier[1:]
		for _, v := range g.Neighbors4(u) {
			if _, ok := region[v]; ok {
				continue
			}
			if n, ok := qualified[v]; ok {
				region[v] = n
				frontier = append(frontier, v)
				if len(region) >= maxCells {
					break
				}
			}
		}
	}
	topo := intent.MeshIntent(g, region, 1, 1)
	if len(topo.Cells()) < 2 || len(topo.Edges) == 0 {
		return nil, fmt.Errorf("experiments: control intent region degenerate (%d cells)", len(topo.Cells()))
	}
	return topo, nil
}

// controlCoverage widens the footprint for small-scale control runs so the
// slimmed constellation still guarantees cells.
func controlCoverage() orbit.CoverageParams {
	return orbit.CoverageParams{MinElevation: orbit.DefaultCoverageParams.MinElevation / 2}
}

// Figure16 demonstrates dynamic enforcement of a fixed geographic intent:
// the intent never changes while the compiled satellite topology evolves.
func Figure16(scale Scale) ([]*metrics.Table, []*mpc.Snapshot, error) {
	sats := controlConstellation(scale)
	topo, err := controlIntent(scale, sats)
	if err != nil {
		return nil, nil, err
	}
	ctl, err := mpc.New(mpc.Config{
		Topo: topo, Sats: sats, Coverage: controlCoverage(),
		LifetimeHorizon: 2 * scale.ControlDt, LifetimeStep: scale.ControlDt / 5,
	})
	if err != nil {
		return nil, nil, err
	}
	tab := metrics.NewTable("Figure 16: dynamic enforcement of a fixed geographic intent",
		"minute", "inter-cell ISLs", "ring ISLs", "enforcement", "ISL changes vs prev")
	var snaps []*mpc.Snapshot
	var prev *mpc.Snapshot
	for s := 0; s < scale.ControlSlots; s++ {
		t := float64(s) * scale.ControlDt
		snap := ctl.Compile(t)
		added, removed := mpc.DiffLinks(prev, snap)
		tab.AddRow(int(t/60), len(snap.InterLinks), len(snap.RingLinks),
			fmt.Sprintf("%.3f", ctl.EnforcementRatio(snap)), len(added)+len(removed))
		snaps = append(snaps, snap)
		prev = snap
	}
	meta := metrics.NewTable("Figure 16 (context)", "metric", "value")
	meta.AddRow("intent cells (fixed over the run)", len(topo.Cells()))
	meta.AddRow("intent edges (fixed over the run)", len(topo.Edges))
	meta.AddRow("satellites", len(sats))
	return []*metrics.Table{meta, tab}, snaps, nil
}

// Figure17 compares control-plane signaling: TinyLEO's MPC (topology-only
// commands, zero route updates thanks to geo segment anycast) versus
// TS-SDN with and without route aggregation on the same constellation.
func Figure17(scale Scale) ([]*metrics.Table, error) {
	sats := controlConstellation(scale)
	topo, err := controlIntent(scale, sats)
	if err != nil {
		return nil, err
	}
	ctl, err := mpc.New(mpc.Config{
		Topo: topo, Sats: sats, Coverage: controlCoverage(),
		LifetimeHorizon: 2 * scale.ControlDt, LifetimeStep: scale.ControlDt / 5,
	})
	if err != nil {
		return nil, err
	}
	plain, err := tssdn.New(tssdn.Config{Sats: sats})
	if err != nil {
		return nil, err
	}
	ra, err := tssdn.New(tssdn.Config{Sats: sats, RouteAggregation: true})
	if err != nil {
		return nil, err
	}

	perSlot := metrics.NewTable("Figure 17a-b: per-slot control-plane costs",
		"minute", "TS-SDN route updates", "TS-SDN+RA route updates", "TinyLEO route updates",
		"TS-SDN msgs", "TS-SDN+RA msgs", "TinyLEO msgs")
	var totPlain, totRA, totTiny int64
	var prev *mpc.Snapshot
	for s := 0; s < scale.ControlSlots; s++ {
		t := float64(s) * scale.ControlDt
		ps := plain.Step(t)
		rs := ra.Step(t)
		snap := ctl.Compile(t)
		added, removed := mpc.DiffLinks(prev, snap)
		tinyMsgs := int64(2 * (len(added) + len(removed)))
		prev = snap
		perSlot.AddRow(int(t/60), ps.RouteUpdates, rs.RouteUpdates, 0,
			ps.Messages, rs.Messages, tinyMsgs)
		totPlain += ps.Messages
		totRA += rs.Messages
		totTiny += tinyMsgs
	}
	summary := metrics.NewTable("Figure 17c: total signaling messages",
		"controller", "messages", "vs TinyLEO")
	rel := func(v int64) string {
		if totTiny == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(v)/float64(totTiny))
	}
	summary.AddRow("TS-SDN", totPlain, rel(totPlain))
	summary.AddRow("TS-SDN + RA", totRA, rel(totRA))
	summary.AddRow("TinyLEO", totTiny, "1x")
	return []*metrics.Table{perSlot, summary}, nil
}

// Figure17d measures repair time for randomly injected link failures:
// report RTT + MPC compute + instruction RTT (paper: 83.8 ms average,
// 83.5 ms of it RTT).
func Figure17d(scale Scale, failures int) (*metrics.Table, error) {
	sats := controlConstellation(scale)
	topo, err := controlIntent(scale, sats)
	if err != nil {
		return nil, err
	}
	ctl, err := mpc.New(mpc.Config{
		Topo: topo, Sats: sats, Coverage: controlCoverage(),
		LifetimeHorizon: 2 * scale.ControlDt, LifetimeStep: scale.ControlDt / 5,
	})
	if err != nil {
		return nil, err
	}
	snap := ctl.Compile(0)
	if len(snap.InterLinks) == 0 {
		return nil, fmt.Errorf("experiments: no links to fail")
	}
	rng := rand.New(rand.NewSource(7))
	var report, compute, instruct, total []float64
	cur := snap
	for i := 0; i < failures; i++ {
		if len(cur.InterLinks) == 0 {
			break
		}
		victim := cur.InterLinks[rng.Intn(len(cur.InterLinks))]
		// RTT model: satellite→ground controller round trip, 60–110 ms
		// uniformly (slant range + terrestrial backhaul), matching the
		// paper's measured 83.5 ms mean.
		rtt := time.Duration(60+rng.Float64()*50) * time.Millisecond
		next, stats := ctl.Repair(cur, []mpc.Link{victim}, nil, rtt)
		report = append(report, stats.ReportRTT.Seconds()*1e3)
		compute = append(compute, stats.ComputeTime.Seconds()*1e3)
		instruct = append(instruct, stats.InstructRTT.Seconds()*1e3)
		total = append(total, stats.Total().Seconds()*1e3)
		cur = next
	}
	tab := metrics.NewTable("Figure 17d: broken topology repair time (ms)",
		"component", "mean", "p50", "p99", "paper")
	row := func(name string, xs []float64, paper string) {
		s := metrics.Summarize(xs)
		tab.AddRow(name, fmt.Sprintf("%.2f", s.Mean), fmt.Sprintf("%.2f", s.P50),
			fmt.Sprintf("%.2f", s.P99), paper)
	}
	row("failure notification to MPC", report, "~41.75 (half RTT)")
	row("MPC compute time", compute, "~0.3")
	row("MPC instruction to satellites", instruct, "~41.75 (half RTT)")
	row("total", total, "83.8 avg")
	return tab, nil
}
