package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationSolver(t *testing.T) {
	tab, err := AblationSolver(Small, smallLib(t))
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if tab.NumRows() != 8 {
		t.Errorf("rows = %d", tab.NumRows())
	}
	// The greedy+prune default must be the best (smallest) satellite count
	// in the sweep: parse the table back.
	var sb strings.Builder
	tab.RenderCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")[1:]
	best, defaultCount := 1<<30, 0
	for _, ln := range lines {
		f := strings.Split(ln, ",")
		sats, _ := strconv.Atoi(f[2])
		if sats < best {
			best = sats
		}
		if f[0] == "1" && f[1] == "on" {
			defaultCount = sats
		}
	}
	if defaultCount != best {
		t.Errorf("default config (%d sats) is not the sweep's best (%d)", defaultCount, best)
	}
	_ = out
}

func TestAblationLibraryRichness(t *testing.T) {
	s := Small
	s.Slots = 6 // keep the 4-library sweep fast
	tab, err := AblationLibraryRichness(s)
	if err != nil {
		t.Fatal(err)
	}
	renderAll(t, tab)
	// Richer libraries must never do worse: compare first and last rows.
	var sb strings.Builder
	tab.RenderCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")[1:]
	first := strings.Split(lines[0], ",")
	last := strings.Split(lines[len(lines)-1], ",")
	a, _ := strconv.Atoi(first[3])
	b, _ := strconv.Atoi(last[3])
	if b > a {
		t.Errorf("richest library used more satellites (%d) than the poorest (%d)", b, a)
	}
}

func TestAblationMPCLifetime(t *testing.T) {
	tab, err := AblationMPCLifetime(Small)
	if err != nil {
		t.Fatal(err)
	}
	renderAll(t, tab)
	if tab.NumRows() != 2 {
		t.Errorf("rows = %d", tab.NumRows())
	}
}

func TestDiscussionFederation(t *testing.T) {
	tab, err := DiscussionFederation(Small, smallLib(t))
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if !strings.Contains(out, "sharing gain") {
		t.Error("missing gain row")
	}
}

func TestDiscussionRadioOverlap(t *testing.T) {
	tab, err := DiscussionRadioOverlap(Small, smallOuts(t))
	if err != nil {
		t.Fatal(err)
	}
	out := renderAll(t, tab)
	if !strings.Contains(out, "TinyLEO") || !strings.Contains(out, "uniform") {
		t.Error("missing rows")
	}
}

func TestFigure1Maps(t *testing.T) {
	out := Figure1Maps(smallOuts(t))
	if !strings.Contains(out, "demand (peak slot)") || !strings.Contains(out, "TinyLEO supply") {
		t.Fatal("map sections missing")
	}
	lines := strings.Count(out, "\n")
	if lines < 6*18 {
		t.Errorf("maps suspiciously small: %d lines", lines)
	}
	t.Log("\n" + out[:min4(len(out), 2500)])
}

func min4(a, b int) int {
	if a < b {
		return a
	}
	return b
}
