package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/demand"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/orbit"
	"repro/internal/texture"
)

// Table1 reproduces Table 1: statistics of the candidate Earth-repeat
// ground-track library (paper: 423–1,873 km, 92.8–124.2 min, 64,800
// tracks; the count is configuration-dependent, the bands are physics).
func Table1(lib *texture.Library) *metrics.Table {
	st := lib.Stats()
	tab := metrics.NewTable("Table 1: candidate Earth-repeat ground tracks",
		"metric", "value", "paper")
	tab.AddRow("orbital altitude range (km)",
		fmt.Sprintf("%.0f-%.0f", st.MinAltKm, st.MaxAltKm), "423-1,873")
	tab.AddRow("orbital period range (min)",
		fmt.Sprintf("%.1f-%.1f", st.MinPeriodMin, st.MaxPeriodMin), "92.8-124.2")
	tab.AddRow("RAAN range", "[-180°, 180°)", "[-π, π]")
	tab.AddRow("inclination values", len(dedupFloats(lib)), "[0, π]")
	tab.AddRow("repeat (p,q) families", st.NumSpecs, "-")
	tab.AddRow("total candidate tracks", st.NumTracks, "64,800")
	tab.AddRow("coverage entries (nnz)", st.CoverageEntriesTotal, "-")
	return tab
}

func dedupFloats(lib *texture.Library) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, tr := range lib.Tracks {
		v := tr.InclinationDeg()
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Figure3 reproduces Figure 3: the spatial long tail of global demand (3a)
// and its diurnal dynamics (3b).
func Figure3(scale Scale) []*metrics.Table {
	opt := scale.ScenarioOptions()
	d := demand.StarlinkCustomers(opt)

	spatial := metrics.NewTable("Figure 3a: spatial demand unevenness",
		"metric", "value", "paper")
	spatial.AddRow("surface fraction holding 70% of demand",
		fmt.Sprintf("%.1f%%", 100*d.SpatialConcentration(0.7)), "~5% of land")
	spatial.AddRow("surface fraction holding 90% of demand",
		fmt.Sprintf("%.1f%%", 100*d.SpatialConcentration(0.9)), "long tail")
	mask := geo.NewLandMask(d.Grid)
	spatial.AddRow("ocean fraction of Earth",
		fmt.Sprintf("%.1f%%", 100*mask.OceanFraction()), "70.8%")
	spatial.AddRow("cells with demand", d.NonZeroCells(), "-")

	diurnal := metrics.NewTable("Figure 3b: diurnal activity minima (fraction of peak)",
		"region", "min activity", "paper")
	model := demand.DefaultDiurnal
	minAct := 1.0
	for h := 0.0; h < 24; h += 0.25 {
		if a := model.Activity(h); a < minAct {
			minAct = a
		}
	}
	diurnal.AddRow("United States", fmt.Sprintf("%.1f%%", 100*minAct), "51.9%")
	diurnal.AddRow("Germany", fmt.Sprintf("%.1f%%", 100*minAct), "42.7%")
	diurnal.AddRow("Japan", fmt.Sprintf("%.1f%%", 100*minAct), "39.1%")
	return []*metrics.Table{spatial, diurnal}
}

// Figure4 reproduces Figure 4: satellite waste in a uniform
// mega-constellation under uneven demand — the waste-ratio distribution
// and a hotspot cell's time-varying coverage.
func Figure4(scale Scale) []*metrics.Table {
	opt := scale.ScenarioOptions()
	dem := demand.StarlinkCustomers(opt)
	shells := baseline.StarlinkShells()
	// At Small scale, slim the constellation proportionally to keep the
	// runtime down while preserving the uniform layout.
	sats := scaledShellSatellites(shells, scale)
	supCfg := baseline.SupplyConfig{
		Grid: dem.Grid, Slots: dem.Slots, SlotSeconds: dem.SlotSeconds,
		SubSamples: scale.SubSamples, Parallelism: scale.Parallelism,
	}
	supply := baseline.Supply(supCfg, sats)
	// Anchor the demand to what this constellation can actually serve
	// (the paper's premise: demand scaled to Starlink's capacity).
	dem.CalibrateToSupply(supply, scale.Epsilon)

	tab := metrics.NewTable("Figure 4: uniform LEO network resource waste",
		"metric", "value", "paper")
	waste := baseline.WasteRatio(supply, dem.Y)
	tab.AddRow("satellites", len(sats), "Starlink 6,793")
	tab.AddRow("overall waste ratio (supply-demand)/demand",
		fmt.Sprintf("%.1f", waste), "up to ~1000x in idle areas")
	tab.AddRow("availability after calibration",
		fmt.Sprintf("%.3f", baseline.Availability(supply, dem.Y)), ">= ε")

	// Per-cell waste distribution (Fig. 4 left CDF).
	m := dem.Grid.NumCells()
	var ratios []float64
	for i := 0; i < m; i++ {
		sup, ddm := 0.0, 0.0
		for t := 0; t < dem.Slots; t++ {
			sup += supply[t*m+i]
			ddm += dem.Y[t*m+i]
		}
		if sup == 0 {
			continue
		}
		if ddm == 0 {
			ratios = append(ratios, 1000) // fully wasted cell, capped
			continue
		}
		r := (sup - minF(sup, ddm)) / minF(sup, ddm)
		ratios = append(ratios, r)
	}
	s := metrics.Summarize(ratios)
	tab.AddRow("per-cell waste ratio p50", s.P50, "-")
	tab.AddRow("per-cell waste ratio p90", s.P90, "-")
	tab.AddRow("cells with supply but zero demand (fully wasted)",
		countF(ratios, func(v float64) bool { return v >= 1000 }), "most oceanic cells")

	// Hotspot coverage dynamics (Fig. 4 right): satellites over one
	// hotspot cell per slot.
	hotspot := dem.Grid.CellOf(geom.LatLon{Lat: 40.7, Lon: -74})
	cov := metrics.NewTable("Figure 4 (right): hotspot coverage over time (NYC cell)",
		"slot", "satellites overhead")
	for t := 0; t < dem.Slots; t++ {
		cov.AddRow(t, fmt.Sprintf("%.1f", supply[t*m+hotspot]))
	}
	return []*metrics.Table{tab, cov}
}

// scaledShellSatellites shrinks each shell by the scale's control budget
// while preserving the multi-shell uniform structure.
func scaledShellSatellites(shells []baseline.Shell, scale Scale) []orbit.Elements {
	total := 0
	for _, sh := range shells {
		total += sh.Config.NumSatellites()
	}
	budget := scale.ControlSats * 6 // Fig. 4 uses a bigger slice than control experiments
	if budget >= total {
		return baseline.ShellSatellites(shells)
	}
	f := float64(budget) / float64(total)
	var out []orbit.Elements
	for _, sh := range shells {
		w := sh.Config
		w.Planes = maxI(1, int(float64(w.Planes)*sqrtF(f)))
		w.SatsPerPlane = maxI(1, int(float64(w.SatsPerPlane)*sqrtF(f)))
		out = append(out, w.Satellites()...)
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sqrtF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func countF(xs []float64, pred func(float64) bool) int {
	n := 0
	for _, v := range xs {
		if pred(v) {
			n++
		}
	}
	return n
}
