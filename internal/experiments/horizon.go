package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/orbit"
)

// HorizonThroughput measures the horizon planner (§4.2): it compiles the
// same window of control slots sequentially and across a worker pool on
// fresh controllers (cold propagation caches both times, so the
// comparison isolates parallelism), verifies the two plans are
// identical, and reports throughput, speedup, and cache effectiveness.
// horizon ≤ 0 defaults to scale.ControlSlots; workers ≤ 0 defaults to
// runtime.NumCPU().
func HorizonThroughput(scale Scale, horizon, workers int) (*metrics.Table, error) {
	if horizon <= 0 {
		horizon = scale.ControlSlots
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sats := controlConstellation(scale)
	topo, err := controlIntent(scale, sats)
	if err != nil {
		return nil, err
	}
	cfg := mpc.Config{
		Topo: topo, Sats: sats, Coverage: controlCoverage(),
		LifetimeHorizon: 2 * scale.ControlDt, LifetimeStep: scale.ControlDt / 5,
	}

	run := func(w int) ([]*mpc.Snapshot, float64, orbit.CacheStats, error) {
		ctl, err := mpc.New(cfg)
		if err != nil {
			return nil, 0, orbit.CacheStats{}, err
		}
		//lint:tinyleo-ignore the measured wall speedup IS this experiment's result; snapshots are checked for equality separately
		start := time.Now()
		snaps := ctl.HorizonCompile(0, scale.ControlDt, horizon, w)
		//lint:tinyleo-ignore the measured wall speedup IS this experiment's result; snapshots are checked for equality separately
		return snaps, time.Since(start).Seconds(), ctl.CacheStats(), nil
	}

	seqSnaps, seqWall, seqStats, err := run(1)
	if err != nil {
		return nil, err
	}
	parSnaps, parWall, parStats, err := run(workers)
	if err != nil {
		return nil, err
	}
	// The planner's correctness contract: worker count must never change
	// the compiled plan.
	for s := range seqSnaps {
		sl, pl := seqSnaps[s].Links(), parSnaps[s].Links()
		if len(sl) != len(pl) {
			return nil, fmt.Errorf("horizon: slot %d diverged: %d vs %d links", s, len(sl), len(pl))
		}
		for i := range sl {
			if sl[i] != pl[i] {
				return nil, fmt.Errorf("horizon: slot %d link %d diverged: %v vs %v", s, i, sl[i], pl[i])
			}
		}
	}

	tab := metrics.NewTable("Horizon: parallel MPC compile",
		"run", "satellites", "slots", "workers", "wall (s)", "throughput (slots/s)",
		"speedup (x)", "cache hit ratio", "pruned pairs")
	rate := func(wall float64) float64 {
		if wall <= 0 {
			return 0
		}
		return float64(horizon) / wall
	}
	speedup := 0.0
	if parWall > 0 {
		speedup = seqWall / parWall
	}
	tab.AddRow("sequential", len(sats), horizon, 1, fmt.Sprintf("%.3f", seqWall),
		fmt.Sprintf("%.2f", rate(seqWall)), fmt.Sprintf("%.2f", 1.0),
		fmt.Sprintf("%.3f", seqStats.HitRatio()), seqStats.PrunedPairs)
	tab.AddRow("parallel", len(sats), horizon, workers, fmt.Sprintf("%.3f", parWall),
		fmt.Sprintf("%.2f", rate(parWall)), fmt.Sprintf("%.2f", speedup),
		fmt.Sprintf("%.3f", parStats.HitRatio()), parStats.PrunedPairs)
	return tab, nil
}
