package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/southbound"
)

// FleetAggregation measures what the fleet telemetry plane costs the
// southbound command path (tinyleo-bench -run fleet): one controller,
// `agents` in-process agents applying `cmds` SetISL commands round-robin
// over real loopback TCP, each agent bumping instruments in its private
// registry per command. The run executes twice — telemetry off, then on
// with every agent streaming delta reports into a controller-side
// aggregator at a tight interval — and reports the wall-clock ratio as
// an explicit "overhead (x)" column, which CI gates alongside the
// tracing-overhead and horizon numbers. The telemetry-on phase also
// verifies the rollup: the aggregated applied counter must equal the
// commands delivered, or the experiment errors.
//
// This is a wall-clock benchmark of a real network path, not a
// deterministic computation; its numbers are excluded from any canonical
// output.
func FleetAggregation(agents, cmds int) (*metrics.Table, error) {
	if agents <= 0 {
		agents = 4
	}
	if cmds <= 0 {
		cmds = 2000
	}
	tab := metrics.NewTable("Fleet telemetry: aggregation overhead",
		"run", "agents", "commands", "wall (s)", "throughput (cmds/s)",
		"reports", "report bytes", "overhead (x)")
	baseWall := 0.0
	for _, telemetry := range []bool{false, true} {
		wall, reports, bytes, err := fleetPhase(agents, cmds, telemetry)
		if err != nil {
			return nil, err
		}
		name, overhead := "off", 1.0
		if telemetry {
			name = "on"
			if baseWall > 0 {
				overhead = wall / baseWall
			}
		} else {
			baseWall = wall
		}
		rate := 0.0
		if wall > 0 {
			rate = float64(cmds) / wall
		}
		tab.AddRow(name, agents, cmds, fmt.Sprintf("%.3f", wall),
			fmt.Sprintf("%.0f", rate), reports, bytes, fmt.Sprintf("%.2f", overhead))
	}
	return tab, nil
}

// fleetPhase runs one controller+agents command push and reports the
// wall time from first send to last ack plus the telemetry volume the
// aggregator absorbed (zero with telemetry off).
func fleetPhase(agents, cmds int, telemetry bool) (wall float64, reports, bytes uint64, err error) {
	ctl, err := southbound.ListenController("127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	defer ctl.Close()
	var agg *fleet.Aggregator
	if telemetry {
		agg = fleet.NewAggregator(fleet.Options{})
		ctl.OnTelemetry = func(sat uint32, payload []byte) {
			_ = agg.HandleReport(sat, payload)
		}
	}
	perAgent := make([]*obs.Counter, agents)
	for i := 0; i < agents; i++ {
		reg := obs.NewRegistry(true)
		c := reg.Counter("tinyleo_bench_applied_total")
		h := reg.Histogram("tinyleo_bench_apply_delay_s", nil)
		perAgent[i] = c
		a, err := southbound.DialAgentOptions(ctl.Addr(), uint32(i), 5*time.Second,
			southbound.AgentOptions{})
		if err != nil {
			return 0, 0, 0, err
		}
		defer a.Close()
		a.OnCommand = func(m *southbound.Message) {
			c.Inc()
			h.Observe(0.001)
		}
		if telemetry {
			rep := fleet.NewReporter(fleet.NewEncoder(reg), a.SendTelemetry)
			rep.Run(2 * time.Millisecond)
			defer rep.Stop()
		}
	}
	//lint:tinyleo-ignore the measured wall time IS this experiment's result
	start := time.Now()
	for i := 0; i < cmds; i++ {
		m := &southbound.Message{
			Type: southbound.MsgSetISL, SatID: uint32(i % agents),
			Peer: uint32((i + 1) % agents), Up: true,
		}
		if err := ctl.Send(m); err != nil {
			return 0, 0, 0, err
		}
	}
	//lint:tinyleo-ignore ack-wait deadline on a real TCP benchmark path
	deadline := time.Now().Add(30 * time.Second)
	for ctl.PendingAcks() > 0 {
		//lint:tinyleo-ignore ack-wait deadline on a real TCP benchmark path
		if time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("fleet: %d commands never acked", ctl.PendingAcks())
		}
		//lint:tinyleo-ignore polling a real TCP benchmark path, not part of any deterministic output
		time.Sleep(200 * time.Microsecond)
	}
	//lint:tinyleo-ignore the measured wall time IS this experiment's result
	wall = time.Since(start).Seconds()

	if telemetry {
		// Settle: every agent's final report must land and the rollup must
		// agree exactly with the ground truth.
		want := int64(0)
		for _, c := range perAgent {
			want += c.Value()
		}
		rolled := func() int64 {
			for _, s := range agg.TotalsSamples() {
				if s.Name == "tinyleo_bench_applied_total" {
					return int64(s.Value)
				}
			}
			return -1
		}
		//lint:tinyleo-ignore telemetry-settle deadline on a real TCP benchmark path
		for deadline := time.Now().Add(10 * time.Second); rolled() != want; {
			//lint:tinyleo-ignore telemetry-settle deadline on a real TCP benchmark path
			if time.Now().After(deadline) {
				return 0, 0, 0, fmt.Errorf("fleet: rollup %d never converged to ground truth %d", rolled(), want)
			}
			//lint:tinyleo-ignore polling a real TCP benchmark path, not part of any deterministic output
			time.Sleep(time.Millisecond)
		}
		for _, av := range agg.Agents() {
			reports += av.Reports
			bytes += av.Bytes
		}
	}
	return wall, reports, bytes, nil
}
