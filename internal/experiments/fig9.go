package experiments

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/orbit"
	"repro/internal/routing"
	"repro/internal/tssdn"
)

// Figure9 reproduces Figure 9: the non-uniform (TinyLEO) network's
// physical dynamics versus a uniform Walker network of the same size —
// establishable ISLs (9a) and shortest-path churn among satellites (9b)
// over time.
func Figure9(scale Scale, tinySats, uniformSats []orbit.Elements) []*metrics.Table {
	isls := metrics.NewTable("Figure 9a: establishable ISLs over time",
		"minute", "non-uniform", "uniform")
	churn := metrics.NewTable("Figure 9b: shortest-path changes among satellites",
		"minute", "non-uniform changed", "uniform changed", "pairs sampled")

	// Sample O-D satellite pairs for path-churn accounting.
	rng := rand.New(rand.NewSource(42))
	pairs := samplePairs(rng, min2(len(tinySats), len(uniformSats)), 40)

	var prevTiny, prevUni *graphPair
	for s := 0; s < scale.ControlSlots; s++ {
		t := float64(s) * scale.ControlDt
		tiny := buildVisibilityGraph(tinySats, t)
		uni := buildVisibilityGraph(uniformSats, t)
		isls.AddRow(int(t/60), tiny.links, uni.links)
		if prevTiny != nil {
			tc := pathChange(prevTiny, tiny, pairs)
			uc := pathChange(prevUni, uni, pairs)
			churn.AddRow(int(t/60), tc, uc, len(pairs))
		}
		prevTiny, prevUni = tiny, uni
	}
	return []*metrics.Table{isls, churn}
}

type graphPair struct {
	g     *graphT
	links int
}

type graphAlias = routing.Graph
type graphT = graphAlias

// buildVisibilityGraph counts and records all establishable ISLs
// (visibility + range) at time t.
func buildVisibilityGraph(sats []orbit.Elements, t float64) *graphPair {
	pos := make([]geom.Vec3, len(sats))
	for i, e := range sats {
		pos[i] = e.PositionECI(t)
	}
	g := newGraph(len(sats))
	links := 0
	p := orbit.DefaultISLParams
	for i := range sats {
		for j := i + 1; j < len(sats); j++ {
			if p.Visible(pos[i], pos[j]) {
				g.AddBiEdge(i, j, pos[i].Dist(pos[j]))
				links++
			}
		}
	}
	return &graphPair{g: g, links: links}
}

func pathChange(prev, cur *graphPair, pairs [][2]int) int {
	changed := 0
	for _, pr := range pairs {
		p1, _, ok1 := prev.g.ShortestPath(pr[0], pr[1])
		p2, _, ok2 := cur.g.ShortestPath(pr[0], pr[1])
		if ok1 != ok2 {
			changed++
			continue
		}
		if !ok1 {
			continue
		}
		if len(p1) != len(p2) {
			changed++
			continue
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				changed++
				break
			}
		}
	}
	return changed
}

func samplePairs(rng *rand.Rand, n, k int) [][2]int {
	var pairs [][2]int
	for len(pairs) < k && n >= 2 {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			pairs = append(pairs, [2]int{a, b})
		}
	}
	return pairs
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ISLChurnSummary compares per-slot ISL-set stability between a
// non-uniform MPC-compiled topology and a uniform-network topology
// (supporting data for Figure 9/17 discussion).
func ISLChurnSummary(snapshots []*mpc.Snapshot) (added, removed int) {
	for i := 1; i < len(snapshots); i++ {
		a, r := mpc.DiffLinks(snapshots[i-1], snapshots[i])
		added += len(a)
		removed += len(r)
	}
	return
}

// tssdnTopologySize returns the ISL count the TS-SDN baseline would build
// (used by tests to cross-check the visibility graph).
func tssdnTopologySize(sats []orbit.Elements, t float64) int {
	c, err := tssdn.New(tssdn.Config{Sats: sats})
	if err != nil {
		return 0
	}
	return len(c.Topology(t))
}
