package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/southbound"
)

// SouthboundRoundtrip measures the southbound enforcement path over real
// loopback TCP: one controller, `agents` in-process agents, and `cmds`
// SetISL commands pushed round-robin and acknowledged. It runs twice —
// tracing off, then tracing on with every command carrying a span
// context over the wire and every process recording spans — so the
// benchmark trajectory tracks tracing overhead as an explicit ratio,
// which CI gates alongside the horizon-compile numbers.
//
// This is a wall-clock benchmark of a real network path, not a
// deterministic computation; its numbers are excluded from any canonical
// output.
func SouthboundRoundtrip(agents, cmds int) (*metrics.Table, error) {
	if agents <= 0 {
		agents = 4
	}
	if cmds <= 0 {
		cmds = 2000
	}
	tab := metrics.NewTable("Southbound: command roundtrip",
		"run", "agents", "commands", "wall (s)", "throughput (cmds/s)",
		"ack RTT mean (ms)", "retransmits", "overhead (x)")
	baseWall := 0.0
	for _, traced := range []bool{false, true} {
		wall, rttMS, retrans, err := southboundPhase(agents, cmds, traced)
		if err != nil {
			return nil, err
		}
		name, overhead := "untraced", 1.0
		if traced {
			name = "traced"
			if baseWall > 0 {
				overhead = wall / baseWall
			}
		} else {
			baseWall = wall
		}
		rate := 0.0
		if wall > 0 {
			rate = float64(cmds) / wall
		}
		tab.AddRow(name, agents, cmds, fmt.Sprintf("%.3f", wall),
			fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.3f", rttMS),
			retrans, fmt.Sprintf("%.2f", overhead))
	}
	return tab, nil
}

// southboundPhase runs one controller+agents round and reports the wall
// time from first send to last ack, the mean ack RTT, and the retransmit
// count (nonzero only under loss, which loopback shouldn't see).
func southboundPhase(agents, cmds int, traced bool) (wall, rttMS float64, retrans int64, err error) {
	ctl, err := southbound.ListenController("127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	defer ctl.Close()
	var ctlTr *obs.Tracer
	if traced {
		ctlTr = &obs.Tracer{}
		ctlTr.SetProcess("bench-ctl")
		ctlTr.Enable(1 << 14)
		ctl.Tracer = ctlTr
	}
	for i := 0; i < agents; i++ {
		var opts southbound.AgentOptions
		if traced {
			tr := &obs.Tracer{}
			tr.SetProcess(fmt.Sprintf("bench-sat-%d", i))
			tr.Enable(1 << 14)
			opts.Tracer = tr
		}
		a, err := southbound.DialAgentOptions(ctl.Addr(), uint32(i), 5*time.Second, opts)
		if err != nil {
			return 0, 0, 0, err
		}
		defer a.Close()
	}
	//lint:tinyleo-ignore the measured wall time IS this experiment's result
	start := time.Now()
	for i := 0; i < cmds; i++ {
		m := &southbound.Message{
			Type: southbound.MsgSetISL, SatID: uint32(i % agents),
			Peer: uint32((i + 1) % agents), Up: true,
		}
		if traced {
			emit := ctlTr.StartSpan("mpc.emit", "i", fmt.Sprint(i))
			m.Trace = emit.Context()
			//lint:tinyleo-ignore emit timestamp feeds the e2e latency histogram, not any deterministic output
			m.Emitted = time.Now()
			emit.End()
		}
		if err := ctl.Send(m); err != nil {
			return 0, 0, 0, err
		}
	}
	//lint:tinyleo-ignore ack-wait deadline on a real TCP benchmark path
	deadline := time.Now().Add(30 * time.Second)
	for ctl.PendingAcks() > 0 {
		//lint:tinyleo-ignore ack-wait deadline on a real TCP benchmark path
		if time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("southbound: %d commands never acked", ctl.PendingAcks())
		}
		//lint:tinyleo-ignore polling a real TCP benchmark path, not part of any deterministic output
		time.Sleep(200 * time.Microsecond)
	}
	//lint:tinyleo-ignore the measured wall time IS this experiment's result
	wall = time.Since(start).Seconds()
	h := ctl.Metrics().Histogram(southbound.MetricAckRTT, nil)
	if n := h.Count(); n > 0 {
		rttMS = h.Sum() / float64(n) * 1000
	}
	retrans = ctl.Metrics().Counter(southbound.MetricRetransmits).Value()
	return wall, rttMS, retrans, nil
}
