package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/metrics"
)

// ChaosCampaign runs the seeded fault-injection campaigns (tinyleo-bench
// -run chaos): every built-in scenario (or a single named one) against a
// Scale-sized testbed, reporting recovery time, delivery ratio, southbound
// reliability counters, the fleet telemetry health view, and the flight
// recorder's SLO verdicts. Same seed → identical rows (the campaign
// engine is deterministic; see internal/chaos). The returned map holds
// each scenario's final fleet summary, keyed by scenario name — the
// artifact tinyleo-bench -chaos-fleet-out dumps. delta enforces each
// round's repair diff as per-satellite slot-delta batches instead of
// per-link SetISL commands (tinyleo-bench -chaos-delta); the campaign
// stays deterministic either way.
func ChaosCampaign(scale Scale, scenarioName string, seed int64, delta bool) ([]*metrics.Table, map[string]*chaos.FleetSummary, error) {
	names := chaos.ScenarioNames()
	if scenarioName != "" && scenarioName != "all" {
		names = []string{scenarioName}
	}
	cfg := chaos.TestbedConfig{
		Sats:        scale.ControlSats,
		CellDeg:     scale.CellDeg,
		Slots:       scale.ControlSlots,
		SlotSeconds: scale.ControlDt,
	}
	mode := ""
	if delta {
		mode = ", delta enforcement"
	}
	summary := metrics.NewTable(
		fmt.Sprintf("Chaos campaigns (seed %d, %s scale%s)", seed, scale.Name, mode),
		"scenario", "rounds", "faults", "delivery ratio", "recovery p50 (ms)",
		"recovery p99 (ms)", "unrecovered", "retransmits", "ack timeouts",
		"reconnects", "enforcement", "SLO")
	fleetTab := metrics.NewTable("Chaos fleet telemetry (per-scenario health view)",
		"scenario", "agents", "reports", "report bytes", "gaps", "silent",
		"applied", "decode errors")
	verdicts := metrics.NewTable("Chaos SLO verdicts (flight-recorder rules)",
		"scenario", "rule", "value", "verdict")
	fleets := map[string]*chaos.FleetSummary{}
	for _, name := range names {
		s, err := chaos.ScenarioByName(name)
		if err != nil {
			return nil, nil, err
		}
		rep, err := chaos.Run(chaos.Campaign{Scenario: s, Seed: seed, Testbed: cfg, Delta: delta})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: chaos %s: %w", name, err)
		}
		faults := 0
		for _, rr := range rep.Rounds {
			faults += len(rr.Faults)
		}
		slo := "ok"
		if rep.SLOBreached > 0 {
			slo = fmt.Sprintf("%d breached", rep.SLOBreached)
		}
		summary.AddRow(name, len(rep.Rounds), faults,
			fmt.Sprintf("%.3f", rep.DeliveryRatio),
			fmt.Sprintf("%.1f", rep.RecoveryMsP50),
			fmt.Sprintf("%.1f", rep.RecoveryMsP99),
			rep.Unrecovered, rep.Retransmits, rep.AckTimeouts, rep.Reconnects,
			fmt.Sprintf("%.3f", rep.EnforcementRatio), slo)
		if fs := rep.Fleet; fs != nil {
			fleets[name] = fs
			fleetTab.AddRow(name, fs.Agents, fs.Reports, fs.Bytes, fs.Gaps,
				len(fs.Silent), fs.AppliedTotal, fs.DecodeErrors)
		}
		for _, st := range rep.SLO {
			v := "ok"
			if st.Breached {
				v = "BREACH"
			}
			verdicts.AddRow(name, st.Expr(), fmt.Sprintf("%.3f", st.Value), v)
		}
	}
	return []*metrics.Table{summary, fleetTab, verdicts}, fleets, nil
}
