package core

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements the paper's §7 "LEO network decentralization"
// direction: several operators — each owning a regional demand — contribute
// satellites to a federated constellation. Because TinyLEO's planner is
// incremental (Algorithm 1's greedy residual matching), a later entrant
// plans only against the demand the existing federation leaves unsatisfied,
// so each contributes "its (regional) networks at low costs" while the
// union serves everyone.

// Operator is one federation participant.
type Operator struct {
	Name string
	// Demand is the operator's unfolded demand vector.
	Demand []float64
	// Epsilon is the availability the operator requires for its own demand.
	Epsilon float64
}

// FederationResult reports a multi-operator plan.
type FederationResult struct {
	// Contributions[name] is each operator's satellite placement (what it
	// must launch and operate).
	Contributions map[string][]int
	// Combined is the federated constellation (sum of contributions).
	Combined []int
	// Satellites is the federated total.
	Satellites int
	// Availability[name] is each operator's achieved availability against
	// the *combined* constellation.
	Availability map[string]float64
	// IndependentSatellites is what the same operators would need in total
	// without federation (each planning alone).
	IndependentSatellites int
	// SharingGain = IndependentSatellites − Satellites: launches saved by
	// federating.
	SharingGain int
}

// Federate plans a federated constellation: operators join in the given
// order (earlier entrants plan first; §7's "more entrants" join
// incrementally), each adding only the satellites its residual demand
// needs given everything already in orbit. It also prices the
// no-federation alternative for comparison.
func Federate(p Problem, operators []Operator) (*FederationResult, error) {
	if p.Library == nil {
		return nil, errors.New("core: nil library")
	}
	if len(operators) == 0 {
		return nil, errors.New("core: no operators")
	}
	n := p.Library.NumTracks()
	res := &FederationResult{
		Contributions: map[string][]int{},
		Combined:      make([]int, n),
		Availability:  map[string]float64{},
	}
	seen := map[string]bool{}
	for _, op := range operators {
		if seen[op.Name] {
			return nil, fmt.Errorf("core: duplicate operator %q", op.Name)
		}
		seen[op.Name] = true
		if len(op.Demand) != p.Library.UnfoldedLen() {
			return nil, fmt.Errorf("core: operator %q demand length %d, want %d",
				op.Name, len(op.Demand), p.Library.UnfoldedLen())
		}
		if op.Epsilon <= 0 || op.Epsilon > 1 {
			return nil, fmt.Errorf("core: operator %q epsilon %v outside (0,1]", op.Name, op.Epsilon)
		}
		// What does the existing federation already give this operator?
		supply := p.Library.Supply(res.Combined)
		totalOp, satisfiedOp := 0.0, 0.0
		residual := make([]float64, len(op.Demand))
		for k, y := range op.Demand {
			totalOp += y
			s := supply[k]
			if s < y {
				satisfiedOp += s
				residual[k] = y - s
			} else {
				satisfiedOp += y
			}
		}
		contrib := make([]int, n)
		if totalOp > 0 && satisfiedOp < op.Epsilon*totalOp-1e-9 {
			// Plan only the residual, at the fraction that closes the gap:
			// satisfying epsRes of the residual lifts the operator to ε.
			residualTotal := totalOp - satisfiedOp
			epsRes := (op.Epsilon*totalOp - satisfiedOp) / residualTotal
			prob := p
			prob.Demand = residual
			prob.Epsilon = epsRes
			plan, err := Sparsify(prob)
			if err != nil {
				return nil, fmt.Errorf("core: federating %q: %w", op.Name, err)
			}
			contrib = plan.X
			for j, x := range contrib {
				res.Combined[j] += x
			}
		}
		res.Contributions[op.Name] = contrib
	}
	for _, x := range res.Combined {
		res.Satellites += x
	}
	// Each operator's availability against the shared fleet.
	for _, op := range operators {
		res.Availability[op.Name] = Verify(p.Library, res.Combined, op.Demand)
	}
	// The no-federation price: every operator plans alone.
	for _, op := range operators {
		prob := p
		prob.Demand = op.Demand
		prob.Epsilon = op.Epsilon
		solo, err := Sparsify(prob)
		if err != nil {
			return nil, fmt.Errorf("core: solo plan for %q: %w", op.Name, err)
		}
		res.IndependentSatellites += solo.Satellites
	}
	res.SharingGain = res.IndependentSatellites - res.Satellites
	return res, nil
}

// OperatorNames returns the federation's operator names, sorted.
func (r *FederationResult) OperatorNames() []string {
	out := make([]string, 0, len(r.Contributions))
	for name := range r.Contributions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ContributionSize returns how many satellites an operator launched.
func (r *FederationResult) ContributionSize(name string) int {
	n := 0
	for _, x := range r.Contributions[name] {
		n += x
	}
	return n
}
