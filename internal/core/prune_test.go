package core

import (
	"testing"

	"repro/internal/demand"
)

// TestPruneNeverBreaksAvailability: the backward-elimination pass must
// keep the availability at or above ε while only removing satellites.
func TestPruneNeverBreaksAvailability(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 60,
	})
	for _, eps := range []float64{0.7, 0.8, 0.85} {
		res, err := Sparsify(Problem{Library: lib, Demand: d.Y, Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.Availability < eps-1e-9 {
			t.Errorf("ε=%v: availability %v after pruning", eps, res.Availability)
		}
		if v := Verify(lib, res.X, d.Y); v < eps-1e-9 {
			t.Errorf("ε=%v: independent availability %v", eps, v)
		}
		if res.Pruned < 0 {
			t.Errorf("negative pruned count")
		}
	}
}

// TestPruneImprovesOrMatchesBatchGreedy: with batched adds (the paper's
// ⌈·⌉ coefficient), pruning must recover some of the overshoot.
func TestPruneImprovesOrMatchesBatchGreedy(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 80,
	})
	p := Problem{Library: lib, Demand: d.Y, Epsilon: 0.8, MaxAddPerIteration: 16}
	withPrune, err := Sparsify(p)
	if err != nil {
		t.Fatal(err)
	}
	p.DisablePrune = true
	without, err := Sparsify(p)
	if err != nil {
		t.Fatal(err)
	}
	if withPrune.Satellites > without.Satellites {
		t.Errorf("pruning made the plan bigger: %d vs %d",
			withPrune.Satellites, without.Satellites)
	}
	if without.Pruned != 0 {
		t.Errorf("DisablePrune still pruned %d", without.Pruned)
	}
	if withPrune.Satellites+withPrune.Pruned != withoutPruneForward(withPrune) {
		t.Logf("pruned %d of %d forward picks", withPrune.Pruned,
			withPrune.Satellites+withPrune.Pruned)
	}
}

func withoutPruneForward(r *Result) int { return r.Satellites + r.Pruned }

// TestPruneRespectsExpansionFloor: incremental expansion must never prune
// below the already-launched counts.
func TestPruneRespectsExpansionFloor(t *testing.T) {
	lib := testLibrary(t)
	base := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 40,
	})
	p := Problem{Library: lib, Demand: base.Y, Epsilon: 0.8}
	first, err := Sparsify(p)
	if err != nil {
		t.Fatal(err)
	}
	// The extra demand duplicates the base; generous over-provisioning so
	// pruning has something to chew on.
	grown, err := Expand(p, first, base.Y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range first.X {
		if grown.X[j] < first.X[j] {
			t.Fatalf("expansion pruned below the launched floor at track %d: %d < %d",
				j, grown.X[j], first.X[j])
		}
	}
}

// TestTraceExcludesPruning: the trace records forward picks; pruning is
// accounted separately so availability in the trace stays monotone.
func TestTraceExcludesPruning(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 60,
	})
	res, err := Sparsify(Problem{Library: lib, Demand: d.Y, Epsilon: 0.8, MaxAddPerIteration: 8})
	if err != nil {
		t.Fatal(err)
	}
	forward := 0
	for _, it := range res.Trace {
		forward += it.Added
	}
	if forward != res.Satellites+res.Pruned {
		t.Errorf("trace adds %d, satellites+pruned = %d", forward, res.Satellites+res.Pruned)
	}
}
