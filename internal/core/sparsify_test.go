package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/orbit"
	"repro/internal/texture"
)

func geomLatLon(lat, lon float64) geom.LatLon { return geom.LatLon{Lat: lat, Lon: lon} }

func testLibrary(t *testing.T) *texture.Library {
	t.Helper()
	lib, err := texture.Build(texture.Config{
		Grid:            geo.MustGrid(10),
		Specs:           []orbit.RepeatSpec{{P: 1, Q: 15}, {P: 1, Q: 13}},
		InclinationsDeg: []float64{53, 85, -53},
		RAANs:           6,
		Phases:          3,
		Slots:           8,
		SlotSeconds:     900,
		SubSamples:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestSparsifyCoversSimpleDemand(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 100,
	})
	res, err := Sparsify(Problem{Library: lib, Demand: d.Y, Epsilon: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satellites == 0 {
		t.Fatal("no satellites placed")
	}
	if res.Availability < 0.85 {
		t.Errorf("availability = %v < target 0.85", res.Availability)
	}
	// Independent verification must agree with the solver's accounting.
	if v := Verify(lib, res.X, d.Y); math.Abs(v-res.Availability) > 1e-6 {
		t.Errorf("Verify = %v, solver said %v", v, res.Availability)
	}
}

func TestSparsifySparseSolution(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 20,
	})
	res, err := Sparsify(Problem{Library: lib, Demand: d.Y, Epsilon: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// The solution must be sparse: most candidate tracks unused (x_j = 0
	// for most j, §4.1). The test library is only mildly over-complete
	// (108 candidates), so require ≤60% use; at paper scale the ratio is
	// far smaller (see EXPERIMENTS.md).
	chosen := len(res.ChosenTracks())
	if chosen*5 > 3*lib.NumTracks() {
		t.Errorf("solution not sparse: %d of %d tracks used", chosen, lib.NumTracks())
	}
	sum := 0
	for _, x := range res.X {
		if x < 0 {
			t.Fatal("negative satellite count")
		}
		sum += x
	}
	if sum != res.Satellites {
		t.Errorf("‖x‖₁ = %d, Satellites = %d", sum, res.Satellites)
	}
}

func TestSparsifyZeroDemand(t *testing.T) {
	lib := testLibrary(t)
	res, err := Sparsify(Problem{Library: lib, Demand: make([]float64, lib.UnfoldedLen()), Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satellites != 0 {
		t.Errorf("zero demand placed %d satellites", res.Satellites)
	}
	if res.Availability != 1 {
		t.Errorf("zero demand availability = %v", res.Availability)
	}
}

func TestSparsifyUncoverableDemand(t *testing.T) {
	// Demand at the pole with only low-inclination candidates must fail
	// with ErrNoProgress and report partial availability.
	lib, err := texture.Build(texture.Config{
		Grid:            geo.MustGrid(10),
		Specs:           []orbit.RepeatSpec{{P: 1, Q: 15}},
		InclinationsDeg: []float64{20},
		RAANs:           4, Phases: 2, Slots: 4, SlotSeconds: 900, SubSamples: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, lib.UnfoldedLen())
	polar := lib.Grid.CellOf(geomLatLon(88, 10))
	for s := 0; s < lib.Slots; s++ {
		y[s*lib.Grid.NumCells()+polar] = 5
	}
	_, err = Sparsify(Problem{Library: lib, Demand: y, Epsilon: 1})
	if !errors.Is(err, ErrNoProgress) {
		t.Errorf("err = %v, want ErrNoProgress", err)
	}
}

func TestSparsifyValidation(t *testing.T) {
	lib := testLibrary(t)
	if _, err := Sparsify(Problem{Library: nil}); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := Sparsify(Problem{Library: lib, Demand: []float64{1}, Epsilon: 1}); err == nil {
		t.Error("bad demand length accepted")
	}
	if _, err := Sparsify(Problem{Library: lib, Demand: make([]float64, lib.UnfoldedLen()), Epsilon: 0}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := Sparsify(Problem{Library: lib, Demand: make([]float64, lib.UnfoldedLen()), Epsilon: 1.5}); err == nil {
		t.Error("epsilon >1 accepted")
	}
}

func TestLowerEpsilonNeedsFewerSatellites(t *testing.T) {
	// Figure 15c: relaxing the availability target shrinks the network.
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 200,
	})
	strict, err := Sparsify(Problem{Library: lib, Demand: d.Y, Epsilon: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Sparsify(Problem{Library: lib, Demand: d.Y, Epsilon: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Satellites > strict.Satellites {
		t.Errorf("relaxed ε used more satellites (%d) than strict (%d)",
			relaxed.Satellites, strict.Satellites)
	}
}

func TestTraceMonotone(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 100,
	})
	var cbStats []IterationStat
	res, err := Sparsify(Problem{
		Library: lib, Demand: d.Y, Epsilon: 0.9,
		OnIteration: func(it IterationStat) { cbStats = append(cbStats, it) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(cbStats) {
		t.Fatalf("trace %d vs callback %d", len(res.Trace), len(cbStats))
	}
	prevAvail, prevSats := 0.0, 0
	for i, it := range res.Trace {
		if it.Iteration != i+1 {
			t.Fatalf("iteration numbering broken at %d", i)
		}
		if it.Availability < prevAvail-1e-12 {
			t.Fatalf("availability decreased at iteration %d", i)
		}
		if it.Satellites <= prevSats {
			t.Fatalf("satellite count not increasing at iteration %d", i)
		}
		if it.Added < 1 {
			t.Fatalf("iteration %d added %d", i, it.Added)
		}
		prevAvail, prevSats = it.Availability, it.Satellites
	}
}

func TestMaxSatellitesCap(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 500,
	})
	res, err := Sparsify(Problem{Library: lib, Demand: d.Y, Epsilon: 1, MaxSatellites: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satellites > 10 {
		t.Errorf("cap exceeded: %d", res.Satellites)
	}
}

func TestExpandIncremental(t *testing.T) {
	// §4.1 incremental expansion: adding new demand must keep the existing
	// satellites and only add new ones.
	lib := testLibrary(t)
	base := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 60,
	})
	p := Problem{Library: lib, Demand: base.Y, Epsilon: 0.9}
	first, err := Sparsify(p)
	if err != nil {
		t.Fatal(err)
	}
	extra := demand.LatinAmerica(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 60,
	})
	combined, err := Expand(p, first, extra.Y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range first.X {
		if combined.X[j] < first.X[j] {
			t.Fatalf("track %d lost satellites during expansion", j)
		}
	}
	if combined.Satellites < first.Satellites {
		t.Error("expansion shrank the network")
	}
	// Combined result must satisfy the combined demand at ε.
	tot := make([]float64, len(base.Y))
	for k := range tot {
		tot[k] = base.Y[k] + extra.Y[k]
	}
	if v := Verify(lib, combined.X, tot); v < 0.9-1e-9 {
		t.Errorf("combined availability %v < 0.9", v)
	}
}

func TestSolverDeterministic(t *testing.T) {
	lib := testLibrary(t)
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 80,
	})
	p := Problem{Library: lib, Demand: d.Y, Epsilon: 0.9, Parallelism: 4}
	a, err := Sparsify(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sparsify(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Satellites != b.Satellites || a.Iterations != b.Iterations {
		t.Errorf("non-deterministic: %d/%d vs %d/%d sats/iters",
			a.Satellites, a.Iterations, b.Satellites, b.Iterations)
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Fatalf("x differs at track %d", j)
		}
	}
}
