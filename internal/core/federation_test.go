package core

import (
	"testing"

	"repro/internal/demand"
	"repro/internal/geo"
)

// regionalDemand returns a demand field limited to a lat/lon box.
func regionalDemand(lib libGrid, total float64, minLat, maxLat, minLon, maxLon float64) []float64 {
	opt := demand.ScenarioOptions{
		Grid: lib.grid(), Slots: lib.slots(), SlotSeconds: lib.slotSeconds(),
		TotalSatUnits: total,
	}
	full := demand.StarlinkCustomers(opt)
	m := full.Grid.NumCells()
	out := make([]float64, len(full.Y))
	for i := 0; i < m; i++ {
		c := full.Grid.Center(i)
		if c.Lat < minLat || c.Lat > maxLat || c.Lon < minLon || c.Lon > maxLon {
			continue
		}
		for s := 0; s < full.Slots; s++ {
			out[s*m+i] = full.Y[s*m+i]
		}
	}
	return out
}

type libGrid interface {
	grid() *geo.Grid
	slots() int
	slotSeconds() float64
}

func TestFederateSharedBeatsIndependent(t *testing.T) {
	lib := testLibrary(t)
	w := wrap{lib.Grid, lib.Slots, lib.SlotSeconds}
	// Two operators with overlapping mid-latitude regions: the Americas
	// and Europe+Africa. Their satellites pass over each other's regions,
	// which is exactly where federation saves launches.
	ops := []Operator{
		{Name: "americas-isp", Demand: regionalDemand(w, 60, -40, 55, -130, -30), Epsilon: 0.8},
		{Name: "emea-isp", Demand: regionalDemand(w, 60, -40, 60, -15, 60), Epsilon: 0.8},
	}
	res, err := Federate(Problem{Library: lib}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satellites == 0 {
		t.Fatal("empty federation")
	}
	if res.Satellites > res.IndependentSatellites {
		t.Errorf("federation (%d) more expensive than independent plans (%d)",
			res.Satellites, res.IndependentSatellites)
	}
	if res.SharingGain != res.IndependentSatellites-res.Satellites {
		t.Error("gain accounting inconsistent")
	}
	// Both operators meet their availability on the shared fleet.
	for _, op := range ops {
		if a := res.Availability[op.Name]; a < op.Epsilon-1e-9 {
			t.Errorf("%s: availability %v < %v on the shared fleet", op.Name, a, op.Epsilon)
		}
	}
	// Contributions sum to the combined fleet.
	sum := 0
	for _, name := range res.OperatorNames() {
		c := res.ContributionSize(name)
		if c < 0 {
			t.Errorf("%s: negative contribution %d", name, c)
		}
		sum += c
	}
	if sum != res.Satellites {
		t.Errorf("contributions sum %d != combined %d", sum, res.Satellites)
	}
}

func TestFederateValidation(t *testing.T) {
	lib := testLibrary(t)
	if _, err := Federate(Problem{}, nil); err == nil {
		t.Error("nil library accepted")
	}
	if _, err := Federate(Problem{Library: lib}, nil); err == nil {
		t.Error("empty operator list accepted")
	}
	bad := []Operator{{Name: "x", Demand: []float64{1}, Epsilon: 0.9}}
	if _, err := Federate(Problem{Library: lib}, bad); err == nil {
		t.Error("bad demand length accepted")
	}
	w := wrap{lib.Grid, lib.Slots, lib.SlotSeconds}
	d := regionalDemand(w, 20, -40, 55, -130, -30)
	dup := []Operator{
		{Name: "same", Demand: d, Epsilon: 0.8},
		{Name: "same", Demand: d, Epsilon: 0.8},
	}
	if _, err := Federate(Problem{Library: lib}, dup); err == nil {
		t.Error("duplicate operator accepted")
	}
}

// wrap adapts the library fields to the regionalDemand helper.
type wrap struct {
	g  *geo.Grid
	s  int
	ss float64
}

func (w wrap) grid() *geo.Grid      { return w.g }
func (w wrap) slots() int           { return w.s }
func (w wrap) slotSeconds() float64 { return w.ss }
