package core

import (
	"testing"

	"repro/internal/demand"
	"repro/internal/geo"
	"repro/internal/orbit"
	"repro/internal/texture"
)

func benchProblem(b *testing.B) Problem {
	b.Helper()
	lib, err := texture.Build(texture.Config{
		Grid:            geo.MustGrid(10),
		Specs:           orbit.EnumerateRepeatSpecs(1, 500e3, 1873e3),
		InclinationsDeg: []float64{30, 53, 70, -53},
		RAANs:           8, Phases: 3, Slots: 8, SlotSeconds: 900, SubSamples: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	d := demand.StarlinkCustomers(demand.ScenarioOptions{
		Grid: lib.Grid, Slots: lib.Slots, SlotSeconds: lib.SlotSeconds,
		TotalSatUnits: 80,
	})
	return Problem{Library: lib, Demand: d.Y, Epsilon: 0.8}
}

// BenchmarkSparsify measures a full Algorithm 1 run (the paper reports
// 6.5–7.7 h at full scale vs >2 months for exact ILP; this is the
// laptop-scale equivalent).
func BenchmarkSparsify(b *testing.B) {
	p := benchProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sparsify(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparsifyBatched measures the fast batched-add configuration.
func BenchmarkSparsifyBatched(b *testing.B) {
	p := benchProblem(b)
	p.MaxAddPerIteration = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sparsify(p); err != nil {
			b.Fatal(err)
		}
	}
}
