// Package core implements TinyLEO's primary contribution: on-demand LEO
// network sparsification (paper §4.1, Algorithm 1). Given an over-complete
// texture library of Earth-repeat ground tracks and a spatiotemporally
// uneven demand field, it selects a sparse set of orbital slots — and the
// number of satellites per slot — that covers the demand everywhere,
// anytime, with as few satellites as possible.
//
// The solver is a covering variant of matching pursuit from compressed
// sensing: it temporally unfolds demand and coverage, repeatedly picks the
// ground track that satisfies the most residual demand, adds the
// least-squares number of satellites to it, and clamps the residual at
// zero (the covering constraint A·x ≥ y of Equation 3).
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/texture"
)

// Solver telemetry on the process-wide default registry (free unless
// obs.Enable() was called): per-iteration progress of Algorithm 1 — the
// Fig. 15c availability-vs-size trajectory as live series.
var (
	obsIterations   = obs.Default().Counter("tinyleo_sparsify_iterations_total")
	obsIterSeconds  = obs.Default().Histogram("tinyleo_sparsify_iteration_seconds", obs.DefBuckets)
	obsResidual     = obs.Default().Gauge("tinyleo_sparsify_residual_fraction")
	obsAvailability = obs.Default().Gauge("tinyleo_sparsify_availability")
	obsSatellites   = obs.Default().Gauge("tinyleo_sparsify_satellites")
	obsPruned       = obs.Default().Counter("tinyleo_sparsify_pruned_total")
)

// Problem describes one sparsification run.
type Problem struct {
	// Library is the candidate texture library (Ãᵀ, track-major).
	Library *texture.Library
	// Demand is the unfolded demand ỹ of length Library.UnfoldedLen(),
	// in satellite units per (slot, cell).
	Demand []float64
	// Epsilon is the network availability target ε ∈ (0, 1]: the solver
	// stops when at least ε of the total demand is satisfied (the paper
	// runs ε = 100% and a cheaper ε = 99%).
	Epsilon float64
	// MaxSatellites optionally caps the constellation size (0 = no cap).
	MaxSatellites int
	// MaxIterations caps MP iterations (0 = 10× the track count).
	MaxIterations int
	// MaxAddPerIteration caps how many satellites one iteration may add to
	// a single track (0 = 1, pure greedy — measurably sparser solutions;
	// raise it to trade solution quality for solver speed).
	MaxAddPerIteration int
	// Parallelism bounds the argmax scan workers (0 = NumCPU).
	Parallelism int
	// DisablePrune skips the backward-elimination refinement pass that
	// removes satellites the greedy selection over-provisioned (the
	// pruning idea of CoSaMP [22], which the paper's Algorithm 1 builds
	// on). Pruning never lowers availability below ε.
	DisablePrune bool
	// OnIteration, if non-nil, observes solver progress after every
	// iteration (used to draw the availability-vs-size curve of Fig. 15c).
	OnIteration func(it IterationStat)
}

// IterationStat is one row of solver progress.
type IterationStat struct {
	Iteration    int
	Track        int     // chosen track index
	Added        int     // satellites added this iteration
	Satellites   int     // cumulative satellites
	Availability float64 // fraction of demand satisfied so far
}

// Result is a sparsified constellation.
type Result struct {
	// X[j] is the number of satellites placed on library track j.
	X []int
	// Satellites is ‖x‖₁, the objective of Equation 2.
	Satellites int
	// Availability is the satisfied fraction of total demand.
	Availability float64
	// Iterations is the number of MP iterations executed.
	Iterations int
	// Trace records per-iteration progress (same data OnIteration sees).
	Trace []IterationStat
	// Pruned counts satellites removed by the backward-elimination pass.
	Pruned int
}

// ErrNoProgress is returned when remaining demand cannot be covered by any
// candidate track (e.g. polar demand with no high-inclination candidates).
var ErrNoProgress = errors.New("core: residual demand not coverable by any candidate track")

// Sparsify runs Algorithm 1.
func Sparsify(p Problem) (*Result, error) {
	if p.Library == nil {
		return nil, errors.New("core: nil library")
	}
	n := p.Library.NumTracks()
	if len(p.Demand) != p.Library.UnfoldedLen() {
		return nil, fmt.Errorf("core: demand length %d, want %d", len(p.Demand), p.Library.UnfoldedLen())
	}
	if p.Epsilon <= 0 || p.Epsilon > 1 {
		return nil, fmt.Errorf("core: epsilon %v outside (0,1]", p.Epsilon)
	}
	st := newSolverState(p)
	res := &Result{X: make([]int, n)}
	if err := st.run(res); err != nil {
		return res, err
	}
	if !p.DisablePrune {
		prune(p, res, nil)
	}
	return res, nil
}

// prune is the backward-elimination refinement: repeatedly remove the
// satellite whose removal hurts satisfied demand least, as long as the
// availability target still holds. Greedy forward selection routinely
// over-provisions cells that later picks also cover; this recovers that
// slack (CoSaMP-style pruning [22]). floor, when non-nil, bounds each
// track's count from below (already-launched satellites cannot be pruned
// during incremental expansion).
func prune(p Problem, res *Result, floor []int) {
	lib := p.Library
	supply := lib.Supply(res.X)
	total, satisfied := 0.0, 0.0
	for k, y := range p.Demand {
		total += y
		if s := supply[k]; s < y {
			satisfied += s
		} else {
			satisfied += y
		}
	}
	target := p.Epsilon * total
	// satisfiedDelta returns the satisfied-demand change from removing one
	// satellite of track j.
	satisfiedDelta := func(j int) float64 {
		d := 0.0
		lib.TrackRow(j, func(k int, frac float64) {
			y := p.Demand[k]
			if y == 0 {
				return
			}
			before := supply[k]
			after := before - frac
			ob, oa := before, after
			if ob > y {
				ob = y
			}
			if oa > y {
				oa = y
			}
			d += oa - ob // ≤ 0
		})
		return d
	}
	for {
		bestJ, bestDelta := -1, math.Inf(-1)
		for j, x := range res.X {
			if x == 0 || (floor != nil && x <= floor[j]) {
				continue
			}
			if d := satisfiedDelta(j); satisfied+d >= target-1e-9 && d > bestDelta {
				bestJ, bestDelta = j, d
			}
		}
		if bestJ < 0 {
			break
		}
		res.X[bestJ]--
		res.Satellites--
		res.Pruned++
		obsPruned.Inc()
		satisfied += bestDelta
		lib.TrackRow(bestJ, func(k int, frac float64) { supply[k] -= frac })
	}
	if total > 0 {
		res.Availability = satisfied / total
	}
}

// Expand continues a previous run with additional demand: the paper's
// incremental LEO network expansion (§4.1). The existing satellites in
// prev.X are kept; only new ones are added to satisfy extraDemand (an
// unfolded vector). Returns the combined result.
func Expand(p Problem, prev *Result, extraDemand []float64) (*Result, error) {
	if len(extraDemand) != p.Library.UnfoldedLen() {
		return nil, fmt.Errorf("core: extra demand length %d, want %d", len(extraDemand), p.Library.UnfoldedLen())
	}
	if len(prev.X) != p.Library.NumTracks() {
		return nil, errors.New("core: previous result does not match library")
	}
	// New problem: total demand is old + extra; the residual starts from
	// the existing supply.
	combined := make([]float64, len(extraDemand))
	for k := range combined {
		combined[k] = p.Demand[k] + extraDemand[k]
	}
	p2 := p
	p2.Demand = combined
	st := newSolverState(p2)
	res := &Result{X: append([]int(nil), prev.X...)}
	// Deduct existing supply from the residual.
	for j, x := range res.X {
		if x > 0 {
			st.apply(j, x)
			res.Satellites += x
		}
	}
	if err := st.run(res); err != nil {
		return res, err
	}
	if !p.DisablePrune {
		prune(p2, res, prev.X) // launched satellites are a hard floor
	}
	return res, nil
}

type solverState struct {
	p        Problem
	residual []float64 // clamped at ≥ 0
	total    float64   // ‖ỹ‖₁
	remain   float64   // ‖r‖₁
	workers  int
}

func newSolverState(p Problem) *solverState {
	st := &solverState{p: p, residual: append([]float64(nil), p.Demand...)}
	for _, v := range p.Demand {
		if v < 0 {
			panic("core: negative demand")
		}
		st.total += v
	}
	st.remain = st.total
	st.workers = p.Parallelism
	if st.workers <= 0 {
		st.workers = runtime.NumCPU()
	}
	return st
}

// apply places x satellites on track j, decrementing the clamped residual.
func (st *solverState) apply(j, x int) {
	fx := float64(x)
	st.p.Library.TrackRow(j, func(k int, frac float64) {
		r := st.residual[k]
		if r <= 0 {
			return
		}
		dec := fx * frac
		if dec > r {
			dec = r
		}
		st.residual[k] = r - dec
		st.remain -= dec
	})
}

// score returns how much residual demand one satellite on track j would
// satisfy (Σ_k min(A_jk, r_k)) together with the raw dot product A_jᵀr and
// ‖A_j‖² restricted to unsatisfied entries, used for the add count.
func (st *solverState) score(j int) (satisfiable, dot, norm2 float64) {
	st.p.Library.TrackRow(j, func(k int, frac float64) {
		r := st.residual[k]
		if r <= 0 {
			return
		}
		if frac < r {
			satisfiable += frac
		} else {
			satisfiable += r
		}
		dot += frac * r
		norm2 += frac * frac
	})
	return
}

func (st *solverState) run(res *Result) error {
	p := st.p
	n := p.Library.NumTracks()
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	maxAdd := p.MaxAddPerIteration
	if maxAdd <= 0 {
		maxAdd = 1
	}
	target := (1 - p.Epsilon) * st.total

	span := obs.StartSpan("core.sparsify", "tracks", strconv.Itoa(n))
	defer span.End()
	for res.Iterations < maxIter && st.remain > target+1e-9 {
		iterStart := time.Now()
		j, satisfiable, dot, norm2 := st.argmax(n)
		if satisfiable <= 1e-12 {
			res.Availability = st.availability()
			return fmt.Errorf("%w: %.4f of demand satisfied", ErrNoProgress, res.Availability)
		}
		// Least-squares coefficient, clamped to [1, maxAdd]; never add more
		// than needed to close the availability gap on this track alone.
		add := int(math.Ceil(dot / norm2))
		if add < 1 {
			add = 1
		}
		if add > maxAdd {
			add = maxAdd
		}
		if gap := int(math.Ceil((st.remain - target) / satisfiable)); add > gap {
			add = gap
		}
		if p.MaxSatellites > 0 && res.Satellites+add > p.MaxSatellites {
			add = p.MaxSatellites - res.Satellites
			if add <= 0 {
				break
			}
		}
		st.apply(j, add)
		res.X[j] += add
		res.Satellites += add
		res.Iterations++
		stat := IterationStat{
			Iteration:    res.Iterations,
			Track:        j,
			Added:        add,
			Satellites:   res.Satellites,
			Availability: st.availability(),
		}
		res.Trace = append(res.Trace, stat)
		obsIterations.Inc()
		obsIterSeconds.ObserveDuration(time.Since(iterStart))
		obsAvailability.Set(stat.Availability)
		obsResidual.Set(1 - stat.Availability)
		obsSatellites.Set(float64(res.Satellites))
		if flightrec.Enabled() {
			flightrec.Emit(flightrec.CompCore, "sparsify_iter",
				"iter", strconv.Itoa(stat.Iteration),
				"track", strconv.Itoa(stat.Track),
				"added", strconv.Itoa(stat.Added),
				"satellites", strconv.Itoa(stat.Satellites),
				"availability", strconv.FormatFloat(stat.Availability, 'f', 4, 64))
		}
		if p.OnIteration != nil {
			p.OnIteration(stat)
		}
	}
	res.Availability = st.availability()
	return nil
}

func (st *solverState) availability() float64 {
	if st.total == 0 {
		return 1
	}
	return 1 - st.remain/st.total
}

// argmax scans all tracks in parallel for the one whose single satellite
// satisfies the most residual demand (Algorithm 1 lines 6–7, parallelized
// as in §5 "we have also parallelized Algorithm 1's demand matching of all
// orbit candidates").
func (st *solverState) argmax(n int) (best int, satisfiable, dot, norm2 float64) {
	type cand struct {
		j                      int
		satisfiable, dot, norm float64
	}
	workers := st.workers
	if workers > n {
		workers = n
	}
	results := make([]cand, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			local := cand{j: -1}
			for j := lo; j < hi; j++ {
				s, d, nn := st.score(j)
				if s > local.satisfiable {
					local = cand{j: j, satisfiable: s, dot: d, norm: nn}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	bestCand := cand{j: -1}
	for _, c := range results {
		if c.j >= 0 && (bestCand.j < 0 || c.satisfiable > bestCand.satisfiable ||
			(c.satisfiable == bestCand.satisfiable && c.j < bestCand.j)) {
			bestCand = c
		}
	}
	if bestCand.j < 0 {
		return 0, 0, 0, 1
	}
	return bestCand.j, bestCand.satisfiable, bestCand.dot, bestCand.norm
}

// Verify recomputes availability of a result against a demand vector from
// scratch (independent of solver state), for tests and experiments.
func Verify(lib *texture.Library, x []int, demand []float64) float64 {
	supply := lib.Supply(x)
	tot, sat := 0.0, 0.0
	for k, y := range demand {
		tot += y
		s := supply[k]
		if s < y {
			sat += s
		} else {
			sat += y
		}
	}
	if tot == 0 {
		return 1
	}
	return sat / tot
}

// ChosenTracks returns the indices of tracks with x > 0.
func (r *Result) ChosenTracks() []int {
	var out []int
	for j, x := range r.X {
		if x > 0 {
			out = append(out, j)
		}
	}
	return out
}
