// Package intent implements TinyLEO's geographic traffic-engineering
// intent abstraction (paper §4.2): operators define a topology G(V, E, N)
// over geographic cells — each node a cell with a guaranteed satellite
// count n_u, each edge a required number of inter-cell ISLs n_{u,v} — plus
// hop-by-hop geographic routes on top of it. The package also provides the
// paper's northbound intent verifier (§5): per-cell capacity, inter-cell
// ISL visibility, topology connectivity, and route reachability and
// loop-freedom.
package intent

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/routing"
)

// Topology is the geographic topology intent G(V, E, N).
type Topology struct {
	Grid *geo.Grid
	// MinSats[u] is n_u: the guaranteed number of available satellites
	// over cell u (from the sparsifier's supply-demand match).
	MinSats map[int]int
	// Edges[{u,v}] (u < v) is n_{u,v}: the required ISL count between
	// connected cells.
	Edges map[[2]int]int
}

// NewTopology creates an empty intent over a grid.
func NewTopology(g *geo.Grid) *Topology {
	return &Topology{Grid: g, MinSats: map[int]int{}, Edges: map[[2]int]int{}}
}

// AddCell declares cell u with guaranteed satellite count n.
func (t *Topology) AddCell(u, n int) { t.MinSats[u] = n }

// Connect requires n ISLs between cells u and v.
func (t *Topology) Connect(u, v, n int) {
	if u == v {
		panic("intent: self edge")
	}
	t.Edges[edgeKey(u, v)] = n
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// EdgeDemand returns n_{u,v} (0 if unconnected).
func (t *Topology) EdgeDemand(u, v int) int { return t.Edges[edgeKey(u, v)] }

// Cells returns the declared cell IDs in ascending order.
func (t *Topology) Cells() []int {
	out := make([]int, 0, len(t.MinSats))
	for u := range t.MinSats {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Neighbors returns the cells connected to u, ascending.
func (t *Topology) Neighbors(u int) []int {
	var out []int
	for e := range t.Edges {
		if e[0] == u {
			out = append(out, e[1])
		} else if e[1] == u {
			out = append(out, e[0])
		}
	}
	sort.Ints(out)
	return out
}

// EdgeList returns the intent edges sorted lexicographically. Graph
// construction and verification iterate this instead of the Edges map so
// adjacency order — and with it equal-cost route tie-breaking and error
// ordering — is identical across runs.
func (t *Topology) EdgeList() [][2]int {
	out := make([][2]int, 0, len(t.Edges))
	for e := range t.Edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// CellGraph projects the intent onto a routing.Graph whose node IDs are
// *grid cell IDs* compressed via the index map returned alongside; edge
// weights are great-circle distances between cell centers.
func (t *Topology) CellGraph() (*routing.Graph, map[int]int, []int) {
	cells := t.Cells()
	idx := make(map[int]int, len(cells))
	for i, c := range cells {
		idx[c] = i
	}
	g := routing.NewGraph(len(cells))
	for _, e := range t.EdgeList() {
		g.AddBiEdge(idx[e[0]], idx[e[1]], t.Grid.CenterDistance(e[0], e[1]))
	}
	return g, idx, cells
}

// VerifyConfig bounds the physical feasibility checks.
type VerifyConfig struct {
	// MaxISLRange is the maximum laser range (m) between satellites of
	// adjacent cells; cells whose center distance exceeds it cannot honor
	// an edge intent.
	MaxISLRange float64
	// MaxISLsPerSat caps how many intent edges a cell can serve given its
	// satellite budget (3 for Starlink-class satellites; 1 terminal is
	// spent per inter-cell gateway assignment, 2 on the intra-cell ring).
	MaxISLsPerSat int
}

// DefaultVerifyConfig matches §6.1's satellite model.
var DefaultVerifyConfig = VerifyConfig{MaxISLRange: 5000e3, MaxISLsPerSat: 3}

// Verify checks the two physical constraints of §4.2 — per-cell satellite
// budget (n_u ≥ Σ_v n_{u,v}) and inter-cell ISL visibility — plus basic
// shape errors. It returns all violations found.
func (t *Topology) Verify(cfg VerifyConfig) []error {
	var errs []error
	for _, e := range t.EdgeList() {
		n := t.Edges[e]
		if n <= 0 {
			errs = append(errs, fmt.Errorf("intent: edge %v has non-positive ISL demand %d", e, n))
		}
		for _, u := range e {
			if _, ok := t.MinSats[u]; !ok {
				errs = append(errs, fmt.Errorf("intent: edge %v references undeclared cell %d", e, u))
			}
		}
		if d := t.Grid.CenterDistance(e[0], e[1]); cfg.MaxISLRange > 0 && d > cfg.MaxISLRange {
			errs = append(errs, fmt.Errorf("intent: cells %d-%d are %.0f km apart, beyond ISL range %.0f km",
				e[0], e[1], d/1e3, cfg.MaxISLRange/1e3))
		}
	}
	for _, u := range t.Cells() {
		n := t.MinSats[u]
		demand := 0
		for _, v := range t.Neighbors(u) {
			demand += t.EdgeDemand(u, v)
		}
		// Each satellite can serve one inter-cell gateway slot (the other
		// terminals carry the ring), so n_u must cover Σ n_{u,v}.
		if demand > n {
			errs = append(errs, fmt.Errorf("intent: cell %d needs %d gateway satellites but only %d guaranteed", u, demand, n))
		}
		if n < 0 {
			errs = append(errs, fmt.Errorf("intent: cell %d has negative satellite count", u))
		}
	}
	return errs
}

// Connected reports whether the intent topology is one connected component
// over its declared edges (isolated declared cells are allowed only if the
// topology has no edges at all).
func (t *Topology) Connected() bool {
	cells := t.Cells()
	if len(cells) == 0 {
		return true
	}
	g, idx, _ := t.CellGraph()
	// Start from any cell that has an edge.
	start := -1
	for e := range t.Edges {
		start = idx[e[0]]
		break
	}
	if start == -1 {
		return len(cells) <= 1
	}
	withEdges := map[int]bool{}
	for e := range t.Edges {
		withEdges[idx[e[0]]] = true
		withEdges[idx[e[1]]] = true
	}
	return g.ConnectedComponentSize(start) >= len(withEdges)
}

// Route is a geographic segment route: the ordered cell list u→w₁→…→v that
// the data plane encodes into packet headers (§4.3).
type Route struct {
	Cells []int
}

// VerifyRoute checks the §4.3 deliverability preconditions the control
// plane must guarantee before installing a route: non-empty, loop-free,
// and every consecutive cell pair connected in the topology intent.
func (t *Topology) VerifyRoute(r Route) error {
	if len(r.Cells) == 0 {
		return fmt.Errorf("intent: empty route")
	}
	seen := map[int]bool{}
	for _, c := range r.Cells {
		if seen[c] {
			return fmt.Errorf("intent: route revisits cell %d (loop)", c)
		}
		seen[c] = true
		if _, ok := t.MinSats[c]; !ok {
			return fmt.Errorf("intent: route crosses undeclared cell %d", c)
		}
	}
	for i := 1; i < len(r.Cells); i++ {
		if t.EdgeDemand(r.Cells[i-1], r.Cells[i]) <= 0 {
			return fmt.Errorf("intent: route hop %d→%d has no ISL intent", r.Cells[i-1], r.Cells[i])
		}
	}
	return nil
}

// Length returns the route's great-circle length (m) over cell centers.
func (t *Topology) Length(r Route) float64 {
	total := 0.0
	for i := 1; i < len(r.Cells); i++ {
		total += t.Grid.CenterDistance(r.Cells[i-1], r.Cells[i])
	}
	return total
}

// PropagationDelay returns the route's one-way speed-of-light delay (s)
// over cell centers — a lower bound on the satellite path delay.
func (t *Topology) PropagationDelay(r Route) float64 {
	return t.Length(r) / geom.C
}
