package intent

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/routing"
)

// This file implements the traffic-engineering policy compilers of §4.2 /
// Figure 18: shortest-path routing, multipath load balancing, risk-area
// detours, and cross-oceanic traffic offloading. Each compiler emits
// geographic Routes over a Topology; the data plane then enforces them via
// segment anycast without further control-plane involvement.

// ShortestPathRoute returns the minimum-distance cell route from src to dst
// over the intent topology.
func (t *Topology) ShortestPathRoute(src, dst int) (Route, error) {
	g, idx, cells := t.CellGraph()
	si, ok1 := idx[src]
	di, ok2 := idx[dst]
	if !ok1 || !ok2 {
		return Route{}, fmt.Errorf("intent: endpoint not declared (src ok=%v dst ok=%v)", ok1, ok2)
	}
	p, _, ok := g.ShortestPath(si, di)
	if !ok {
		return Route{}, fmt.Errorf("intent: %d unreachable from %d", dst, src)
	}
	return Route{Cells: remap(p, cells)}, nil
}

// MultipathRoutes returns up to k loopless routes from src to dst in
// increasing length order (the multipath load-balancing policy [39]).
func (t *Topology) MultipathRoutes(src, dst, k int) ([]Route, error) {
	g, idx, cells := t.CellGraph()
	si, ok1 := idx[src]
	di, ok2 := idx[dst]
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("intent: endpoint not declared")
	}
	paths := g.KShortestPaths(si, di, k)
	if len(paths) == 0 {
		return nil, fmt.Errorf("intent: %d unreachable from %d", dst, src)
	}
	out := make([]Route, len(paths))
	for i, p := range paths {
		out[i] = Route{Cells: remap(p, cells)}
	}
	return out, nil
}

// DetourRoute returns the shortest route from src to dst that avoids the
// given cells (the risk-detour policy [40, 41], e.g. routing around areas
// under solar-storm risk or political constraints).
func (t *Topology) DetourRoute(src, dst int, avoid map[int]bool) (Route, error) {
	g, idx, cells := t.CellGraph()
	si, ok1 := idx[src]
	di, ok2 := idx[dst]
	if !ok1 || !ok2 {
		return Route{}, fmt.Errorf("intent: endpoint not declared")
	}
	if avoid[src] || avoid[dst] {
		return Route{}, fmt.Errorf("intent: endpoint inside avoided area")
	}
	p, _, ok := g.ShortestPathAvoiding(si, di, func(n int) bool { return avoid[cells[n]] })
	if !ok {
		return Route{}, fmt.Errorf("intent: no route avoiding %d cells", len(avoid))
	}
	return Route{Cells: remap(p, cells)}, nil
}

// OceanicOffloadRoute returns the route from src to dst that prefers ocean
// cells: land-cell hops are penalized by landPenalty (≥1) so transit shifts
// onto satellites over water — the trans-oceanic offloading policy [31]
// shown in Figure 11/18b.
func (t *Topology) OceanicOffloadRoute(src, dst int, landPenalty float64) (Route, error) {
	if landPenalty < 1 {
		landPenalty = 1
	}
	cells := t.Cells()
	idx := make(map[int]int, len(cells))
	for i, c := range cells {
		idx[c] = i
	}
	mask := geo.NewLandMask(t.Grid)
	g := newWeightedCellGraph(t, cells, idx, func(u, v int) float64 {
		w := t.Grid.CenterDistance(u, v)
		// Penalize hops by the land fraction at their endpoints.
		lf := (mask.LandFraction(u) + mask.LandFraction(v)) / 2
		return w * (1 + (landPenalty-1)*lf)
	})
	si, ok1 := idx[src]
	di, ok2 := idx[dst]
	if !ok1 || !ok2 {
		return Route{}, fmt.Errorf("intent: endpoint not declared")
	}
	p, _, ok := g.ShortestPath(si, di)
	if !ok {
		return Route{}, fmt.Errorf("intent: %d unreachable from %d", dst, src)
	}
	return Route{Cells: remap(p, cells)}, nil
}

func newWeightedCellGraph(t *Topology, cells []int, idx map[int]int, weight func(u, v int) float64) *routing.Graph {
	g := routing.NewGraph(len(cells))
	for _, e := range t.EdgeList() {
		g.AddBiEdge(idx[e[0]], idx[e[1]], weight(e[0], e[1]))
	}
	return g
}

func remap(path []int, cells []int) []int {
	out := make([]int, len(path))
	for i, p := range path {
		out[i] = cells[p]
	}
	return out
}
