package intent

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// randomTopology builds a random connected-ish intent over a coarse grid.
func randomTopology(seed int64) (*Topology, []int) {
	rng := rand.New(rand.NewSource(seed))
	g := geo.MustGrid(10)
	topo := NewTopology(g)
	// A random walk over grid neighbors declares the cells.
	cur := g.CellID(rng.Intn(g.LatRows()), rng.Intn(g.LonCols()))
	topo.AddCell(cur, 4)
	cells := []int{cur}
	for i := 0; i < 6+rng.Intn(8); i++ {
		nb := g.Neighbors4(cur)
		next := nb[rng.Intn(len(nb))]
		if _, ok := topo.MinSats[next]; !ok {
			topo.AddCell(next, 4)
			cells = append(cells, next)
		}
		if next != cur && topo.EdgeDemand(cur, next) == 0 {
			topo.Connect(cur, next, 1)
		}
		cur = next
	}
	return topo, cells
}

// TestPropertyCompiledRoutesVerify: every route any policy compiler emits
// must pass the intent verifier (loop-free, declared cells, edges exist).
func TestPropertyCompiledRoutesVerify(t *testing.T) {
	f := func(seed int64, aIdx, bIdx uint8) bool {
		topo, cells := randomTopology(seed)
		src := cells[int(aIdx)%len(cells)]
		dst := cells[int(bIdx)%len(cells)]
		if src == dst {
			return true
		}
		if r, err := topo.ShortestPathRoute(src, dst); err == nil {
			if topo.VerifyRoute(r) != nil {
				return false
			}
			if r.Cells[0] != src || r.Cells[len(r.Cells)-1] != dst {
				return false
			}
		}
		if rs, err := topo.MultipathRoutes(src, dst, 3); err == nil {
			for _, r := range rs {
				if topo.VerifyRoute(r) != nil {
					return false
				}
			}
		}
		if r, err := topo.OceanicOffloadRoute(src, dst, 3); err == nil {
			if topo.VerifyRoute(r) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDetourNeverCrossesAvoided: any detour route excludes the
// avoided cells entirely.
func TestPropertyDetourNeverCrossesAvoided(t *testing.T) {
	f := func(seed int64, aIdx, bIdx, avoidIdx uint8) bool {
		topo, cells := randomTopology(seed)
		src := cells[int(aIdx)%len(cells)]
		dst := cells[int(bIdx)%len(cells)]
		avoid := cells[int(avoidIdx)%len(cells)]
		if src == dst || avoid == src || avoid == dst {
			return true
		}
		r, err := topo.DetourRoute(src, dst, map[int]bool{avoid: true})
		if err != nil {
			return true // disconnection is a legal outcome
		}
		for _, c := range r.Cells {
			if c == avoid {
				return false
			}
		}
		return topo.VerifyRoute(r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyShortestIsShortest: no multipath alternative is shorter
// than the shortest-path route.
func TestPropertyShortestIsShortest(t *testing.T) {
	f := func(seed int64, aIdx, bIdx uint8) bool {
		topo, cells := randomTopology(seed)
		src := cells[int(aIdx)%len(cells)]
		dst := cells[int(bIdx)%len(cells)]
		if src == dst {
			return true
		}
		sp, err := topo.ShortestPathRoute(src, dst)
		if err != nil {
			return true
		}
		rs, err := topo.MultipathRoutes(src, dst, 4)
		if err != nil {
			return true
		}
		for _, r := range rs {
			if topo.Length(r) < topo.Length(sp)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
