package intent

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
)

// lineTopology declares cells c0..c4 along the equator, each with 4
// satellites, connected in a chain with 2 ISLs per edge.
func lineTopology(t *testing.T) (*Topology, []int) {
	t.Helper()
	g := geo.MustGrid(10)
	topo := NewTopology(g)
	var cells []int
	for i := 0; i < 5; i++ {
		id := g.CellOf(geom.LatLon{Lat: 5, Lon: float64(-20 + i*10)})
		topo.AddCell(id, 4)
		cells = append(cells, id)
	}
	for i := 1; i < 5; i++ {
		topo.Connect(cells[i-1], cells[i], 2)
	}
	return topo, cells
}

func TestTopologyBasics(t *testing.T) {
	topo, cells := lineTopology(t)
	if got := topo.EdgeDemand(cells[0], cells[1]); got != 2 {
		t.Errorf("edge demand = %d", got)
	}
	if got := topo.EdgeDemand(cells[1], cells[0]); got != 2 {
		t.Errorf("edge demand not symmetric: %d", got)
	}
	if got := topo.EdgeDemand(cells[0], cells[4]); got != 0 {
		t.Errorf("phantom edge %d", got)
	}
	nb := topo.Neighbors(cells[1])
	if len(nb) != 2 {
		t.Errorf("neighbors = %v", nb)
	}
	if len(topo.Cells()) != 5 {
		t.Errorf("cells = %v", topo.Cells())
	}
}

func TestVerifyCleanTopology(t *testing.T) {
	topo, _ := lineTopology(t)
	if errs := topo.Verify(DefaultVerifyConfig); len(errs) != 0 {
		t.Errorf("unexpected violations: %v", errs)
	}
	if !topo.Connected() {
		t.Error("chain should be connected")
	}
}

func TestVerifyCapacityViolation(t *testing.T) {
	topo, cells := lineTopology(t)
	// Middle cell serves 2 edges × 2 ISLs = 4 gateways; cut its budget.
	topo.AddCell(cells[1], 3)
	errs := topo.Verify(DefaultVerifyConfig)
	if len(errs) == 0 {
		t.Fatal("capacity violation not caught")
	}
	if !strings.Contains(errs[0].Error(), "gateway") {
		t.Errorf("unexpected error: %v", errs[0])
	}
}

func TestVerifyRangeViolation(t *testing.T) {
	g := geo.MustGrid(10)
	topo := NewTopology(g)
	a := g.CellOf(geom.LatLon{Lat: 0, Lon: 0})
	b := g.CellOf(geom.LatLon{Lat: 0, Lon: 120}) // ~13,000 km away
	topo.AddCell(a, 4)
	topo.AddCell(b, 4)
	topo.Connect(a, b, 1)
	errs := topo.Verify(DefaultVerifyConfig)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "ISL range") {
			found = true
		}
	}
	if !found {
		t.Errorf("range violation not caught: %v", errs)
	}
}

func TestVerifyUndeclaredCell(t *testing.T) {
	g := geo.MustGrid(10)
	topo := NewTopology(g)
	topo.AddCell(10, 4)
	topo.Connect(10, 11, 1)
	errs := topo.Verify(DefaultVerifyConfig)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "undeclared") {
			found = true
		}
	}
	if !found {
		t.Errorf("undeclared cell not caught: %v", errs)
	}
}

func TestConnectedDetectsPartition(t *testing.T) {
	g := geo.MustGrid(10)
	topo := NewTopology(g)
	a1, a2 := 100, 101
	b1, b2 := 300, 301
	for _, c := range []int{a1, a2, b1, b2} {
		topo.AddCell(c, 2)
	}
	topo.Connect(a1, a2, 1)
	topo.Connect(b1, b2, 1)
	if topo.Connected() {
		t.Error("two components reported connected")
	}
}

func TestVerifyRoute(t *testing.T) {
	topo, cells := lineTopology(t)
	good := Route{Cells: []int{cells[0], cells[1], cells[2]}}
	if err := topo.VerifyRoute(good); err != nil {
		t.Errorf("good route rejected: %v", err)
	}
	if err := topo.VerifyRoute(Route{}); err == nil {
		t.Error("empty route accepted")
	}
	loop := Route{Cells: []int{cells[0], cells[1], cells[0]}}
	if err := topo.VerifyRoute(loop); err == nil {
		t.Error("looping route accepted")
	}
	jump := Route{Cells: []int{cells[0], cells[2]}}
	if err := topo.VerifyRoute(jump); err == nil {
		t.Error("route over missing edge accepted")
	}
	stranger := Route{Cells: []int{cells[0], 9999}}
	if err := topo.VerifyRoute(stranger); err == nil {
		t.Error("route through undeclared cell accepted")
	}
}

func TestShortestPathRoute(t *testing.T) {
	topo, cells := lineTopology(t)
	r, err := topo.ShortestPathRoute(cells[0], cells[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 5 || r.Cells[0] != cells[0] || r.Cells[4] != cells[4] {
		t.Errorf("route = %v", r.Cells)
	}
	if err := topo.VerifyRoute(r); err != nil {
		t.Errorf("compiled route invalid: %v", err)
	}
	if topo.Length(r) <= 0 || topo.PropagationDelay(r) <= 0 {
		t.Error("route metrics broken")
	}
	if _, err := topo.ShortestPathRoute(cells[0], 9999); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestMultipathRoutes(t *testing.T) {
	// Build a ring so two disjoint paths exist.
	g := geo.MustGrid(10)
	topo := NewTopology(g)
	ids := []int{
		g.CellOf(geom.LatLon{Lat: 5, Lon: 0}), g.CellOf(geom.LatLon{Lat: 5, Lon: 10}),
		g.CellOf(geom.LatLon{Lat: 5, Lon: 20}), g.CellOf(geom.LatLon{Lat: 15, Lon: 10}),
	}
	for _, id := range ids {
		topo.AddCell(id, 4)
	}
	topo.Connect(ids[0], ids[1], 1)
	topo.Connect(ids[1], ids[2], 1)
	topo.Connect(ids[0], ids[3], 1)
	topo.Connect(ids[3], ids[2], 1)
	routes, err := topo.MultipathRoutes(ids[0], ids[2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 {
		t.Fatalf("got %d routes", len(routes))
	}
	for _, r := range routes {
		if err := topo.VerifyRoute(r); err != nil {
			t.Errorf("multipath route invalid: %v", err)
		}
	}
	if topo.Length(routes[0]) > topo.Length(routes[1]) {
		t.Error("routes not sorted by length")
	}
}

func TestDetourRoute(t *testing.T) {
	topo, cells := lineTopology(t)
	// Avoiding a chain's middle cell disconnects it.
	if _, err := topo.DetourRoute(cells[0], cells[4], map[int]bool{cells[2]: true}); err == nil {
		t.Error("detour through cut vertex should fail on a chain")
	}
	// Add a bypass and retry.
	g := topo.Grid
	bypass := g.CellOf(geom.LatLon{Lat: 15, Lon: 0})
	topo.AddCell(bypass, 4)
	topo.Connect(cells[1], bypass, 1)
	topo.Connect(bypass, cells[3], 1)
	r, err := topo.DetourRoute(cells[0], cells[4], map[int]bool{cells[2]: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Cells {
		if c == cells[2] {
			t.Error("detour crossed avoided cell")
		}
	}
	if _, err := topo.DetourRoute(cells[0], cells[4], map[int]bool{cells[0]: true}); err == nil {
		t.Error("avoided endpoint accepted")
	}
}

func TestOceanicOffloadPrefersOcean(t *testing.T) {
	// Two same-length routes between endpoints: one over land cells, one
	// over ocean. The offload policy must choose the ocean one.
	g := geo.MustGrid(10)
	topo := NewTopology(g)
	src := g.CellOf(geom.LatLon{Lat: 35, Lon: -80})      // US east coast
	dst := g.CellOf(geom.LatLon{Lat: 45, Lon: 0})        // France
	landMid := g.CellOf(geom.LatLon{Lat: 45, Lon: -75})  // inland Canada
	oceanMid := g.CellOf(geom.LatLon{Lat: 35, Lon: -40}) // mid-Atlantic
	for _, c := range []int{src, dst, landMid, oceanMid} {
		topo.AddCell(c, 4)
	}
	topo.Connect(src, landMid, 1)
	topo.Connect(landMid, dst, 1)
	topo.Connect(src, oceanMid, 1)
	topo.Connect(oceanMid, dst, 1)
	r, err := topo.OceanicOffloadRoute(src, dst, 5)
	if err != nil {
		t.Fatal(err)
	}
	through := map[int]bool{}
	for _, c := range r.Cells {
		through[c] = true
	}
	if !through[oceanMid] {
		t.Errorf("offload route avoided the ocean: %v", r.Cells)
	}
}

func TestMeshIntent(t *testing.T) {
	g := geo.MustGrid(10)
	guaranteed := map[int]int{}
	// A 3×3 block of qualified cells around (5..25, 5..25).
	for la := 0; la < 3; la++ {
		for lo := 0; lo < 3; lo++ {
			id := g.CellOf(geom.LatLon{Lat: 5 + float64(la)*10, Lon: 5 + float64(lo)*10})
			guaranteed[id] = 4
		}
	}
	// One under-provisioned cell that must be excluded.
	weak := g.CellOf(geom.LatLon{Lat: 45, Lon: 45})
	guaranteed[weak] = 1
	topo := MeshIntent(g, guaranteed, 2, 1)
	if _, ok := topo.MinSats[weak]; ok {
		t.Error("under-provisioned cell included")
	}
	if len(topo.Cells()) != 9 {
		t.Errorf("mesh cells = %d", len(topo.Cells()))
	}
	// Interior cell has 4 mesh edges.
	center := g.CellOf(geom.LatLon{Lat: 15, Lon: 15})
	if nb := topo.Neighbors(center); len(nb) != 4 {
		t.Errorf("center neighbors = %v", nb)
	}
	if errs := topo.Verify(DefaultVerifyConfig); len(errs) != 0 {
		t.Errorf("mesh violates: %v", errs)
	}
}

func TestBackboneIntent(t *testing.T) {
	g := geo.MustGrid(10)
	eps := map[string]geom.LatLon{
		"ny":     {Lat: 40, Lon: -74},
		"london": {Lat: 51, Lon: 0},
		"tokyo":  {Lat: 35, Lon: 139},
	}
	topo, anchors := BackboneIntent(g, eps, [][2]string{{"ny", "london"}, {"london", "tokyo"}}, 4, 1)
	if len(anchors) != 3 {
		t.Fatalf("anchors = %v", anchors)
	}
	if !topo.Connected() {
		t.Error("backbone not connected")
	}
	r, err := topo.ShortestPathRoute(anchors["ny"], anchors["tokyo"])
	if err != nil {
		t.Fatalf("no route along backbone: %v", err)
	}
	if err := topo.VerifyRoute(r); err != nil {
		t.Errorf("backbone route invalid: %v", err)
	}
	if errs := topo.Verify(DefaultVerifyConfig); len(errs) != 0 {
		t.Errorf("backbone violates: %v", errs)
	}
}

func TestGuaranteedFromSupply(t *testing.T) {
	g := geo.MustGrid(20)
	m := g.NumCells()
	supply := make([]float64, 2*m)
	supply[5] = 3.9
	supply[m+5] = 2.2 // min over slots = 2.2 ⇒ n_u = 2
	supply[7] = 1.0
	supply[m+7] = 0.4 // min 0.4 ⇒ floor 0 ⇒ excluded
	got := GuaranteedFromSupply(g, 2, supply)
	if got[5] != 2 {
		t.Errorf("cell 5 = %d", got[5])
	}
	if _, ok := got[7]; ok {
		t.Error("cell 7 should be excluded")
	}
}

func TestSelfEdgePanics(t *testing.T) {
	topo := NewTopology(geo.MustGrid(10))
	defer func() {
		if recover() == nil {
			t.Error("self edge accepted")
		}
	}()
	topo.Connect(3, 3, 1)
}
