package intent

import (
	"repro/internal/geo"
	"repro/internal/geom"
)

// Builders for the two intent families showcased in Figure 16: the
// Internet-backbone intent (13b) and a geographic mesh grid intent.

// MeshIntent builds a mesh-grid topology over every cell whose guaranteed
// satellite count (from the sparsifier output, per-cell minimum over time)
// is at least minSats: each such cell connects to its 4-neighbors that also
// qualify, with islPerEdge ISLs per edge (Figure 16b).
func MeshIntent(g *geo.Grid, guaranteed map[int]int, minSats, islPerEdge int) *Topology {
	t := NewTopology(g)
	for u, n := range guaranteed {
		if n >= minSats {
			//lint:tinyleo-ignore AddCell is keyed by cell id; each u appears once, so order cannot matter
			t.AddCell(u, n)
		}
	}
	for u := range t.MinSats {
		for _, v := range g.Neighbors4(u) {
			if _, ok := t.MinSats[v]; ok && u < v {
				//lint:tinyleo-ignore Connect is keyed by the (u,v) edge; each pair is visited once
				t.Connect(u, v, islPerEdge)
			}
		}
	}
	return t
}

// PathIntent builds a chain topology along a sequence of waypoints: every
// cell on the great-circle path between consecutive waypoints is declared
// and linked to its successor — the building block of the backbone intent.
func PathIntent(t *Topology, g *geo.Grid, from, to geom.LatLon, satsPerCell, islPerEdge int) []int {
	steps := int(geom.GreatCircleDist(from, to)/(111e3*g.CellSizeDeg()/2)) + 2
	var cells []int
	last := -1
	for _, p := range geom.GreatCirclePoints(from, to, steps) {
		id := g.CellOf(p)
		if id == last {
			continue
		}
		if _, ok := t.MinSats[id]; !ok {
			t.AddCell(id, satsPerCell)
		}
		if last >= 0 && id != last && t.EdgeDemand(last, id) == 0 {
			t.Connect(last, id, islPerEdge)
		}
		cells = append(cells, id)
		last = id
	}
	return cells
}

// BackboneIntent builds the Figure 13b/16a intent: a topology connecting
// backbone endpoints along great-circle corridors. endpoints maps a name to
// its location; links lists the connected endpoint pairs. Returns the
// topology and per-endpoint anchor cell IDs.
func BackboneIntent(g *geo.Grid, endpoints map[string]geom.LatLon, links [][2]string, satsPerCell, islPerEdge int) (*Topology, map[string]int) {
	t := NewTopology(g)
	anchors := map[string]int{}
	for name, loc := range endpoints {
		id := g.CellOf(loc)
		anchors[name] = id
		if _, ok := t.MinSats[id]; !ok {
			//lint:tinyleo-ignore endpoints sharing a cell all declare the same satsPerCell, so first-wins is value-identical
			t.AddCell(id, satsPerCell)
		}
	}
	for _, l := range links {
		PathIntent(t, g, endpoints[l[0]], endpoints[l[1]], satsPerCell, islPerEdge)
	}
	return t, anchors
}

// GuaranteedFromSupply converts an unfolded supply vector into the per-cell
// guaranteed satellite count n_u = min over slots of floor(supply), the
// geographic invariant the paper's intents build on (§4.2: "the minimal
// number of available satellites over each geographic cell is stable").
func GuaranteedFromSupply(g *geo.Grid, slots int, supply []float64) map[int]int {
	m := g.NumCells()
	out := map[int]int{}
	for i := 0; i < m; i++ {
		minV := -1.0
		for t := 0; t < slots; t++ {
			v := supply[t*m+i]
			if minV < 0 || v < minV {
				minV = v
			}
		}
		if n := int(minV); n > 0 {
			out[i] = n
		}
	}
	return out
}
