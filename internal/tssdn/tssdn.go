// Package tssdn implements the temporospatial SDN baseline of Figure 17
// (Starlink/Aalyria-style controllers [14-16, 37]): each control slot it
// forecasts satellite motion, rebuilds the satellite topology, recomputes
// every satellite's hop-by-hop routes, and pushes the resulting route and
// ISL reconfigurations to the satellites. Its signaling cost is what
// TinyLEO's stable geographic intents eliminate.
package tssdn

import (
	"errors"
	"sort"

	"repro/internal/geom"
	"repro/internal/orbit"
	"repro/internal/routing"
)

// Link is an undirected satellite pair, sorted.
type Link [2]int

func makeLink(a, b int) Link {
	if a > b {
		a, b = b, a
	}
	return Link{a, b}
}

// Config parameterizes the baseline controller.
type Config struct {
	Sats []orbit.Elements
	ISL  orbit.ISLParams
	// MaxISLsPerSat is the laser terminal budget (3 in §6.1).
	MaxISLsPerSat int
	// RouteAggregation enables the "+RA" variant of Figure 17: route
	// entries are aggregated per destination group rather than per
	// destination satellite.
	RouteAggregation bool
	// GroupOf maps a destination satellite to its aggregation group when
	// RouteAggregation is on (e.g. the geographic cell under it). When
	// nil, groups of 8 consecutive indices are used.
	GroupOf func(sat int, t float64) int
	// Destinations samples which satellites routes are computed toward
	// (nil = all satellites). Real TS-SDN computes all; sampling keeps
	// experiments tractable while preserving per-slot ratios.
	Destinations []int
}

// SlotStats is one control slot's accounting.
type SlotStats struct {
	Time         float64
	ISLs         int   // established ISLs this slot
	ISLChanges   int   // links added + removed vs previous slot
	RouteUpdates int64 // changed routing-table entries pushed to satellites
	Messages     int64 // total southbound messages: 2/ISL change + 1/route update
}

// Controller holds cross-slot state.
type Controller struct {
	cfg        Config
	prevLinks  map[Link]bool
	prevRoutes map[[2]int]int // (satellite, destKey) -> next hop
	started    bool
}

// New validates and creates a controller.
func New(cfg Config) (*Controller, error) {
	if len(cfg.Sats) < 2 {
		return nil, errors.New("tssdn: need at least two satellites")
	}
	if cfg.ISL.MaxRange == 0 && cfg.ISL.GrazingMargin == 0 {
		cfg.ISL = orbit.DefaultISLParams
	}
	if cfg.MaxISLsPerSat <= 0 {
		cfg.MaxISLsPerSat = 3
	}
	return &Controller{cfg: cfg, prevRoutes: map[[2]int]int{}}, nil
}

// Topology builds this slot's satellite topology: candidate ISLs are all
// visible pairs, greedily accepted shortest-first under each satellite's
// terminal budget (the standard nearest-neighbor motif).
func (c *Controller) Topology(t float64) []Link {
	n := len(c.cfg.Sats)
	pos := make([]geom.Vec3, n)
	for i, e := range c.cfg.Sats {
		pos[i] = e.PositionECI(t)
	}
	type cand struct {
		l Link
		d float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.cfg.ISL.Visible(pos[i], pos[j]) {
				cands = append(cands, cand{makeLink(i, j), pos[i].Dist(pos[j])})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return lessLink(cands[a].l, cands[b].l)
	})
	degree := make([]int, n)
	var links []Link
	for _, cd := range cands {
		if degree[cd.l[0]] < c.cfg.MaxISLsPerSat && degree[cd.l[1]] < c.cfg.MaxISLsPerSat {
			degree[cd.l[0]]++
			degree[cd.l[1]]++
			links = append(links, cd.l)
		}
	}
	sort.Slice(links, func(a, b int) bool { return lessLink(links[a], links[b]) })
	return links
}

func lessLink(a, b Link) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// Step runs one control slot at time t and returns its signaling stats.
func (c *Controller) Step(t float64) SlotStats {
	stats := SlotStats{Time: t}
	links := c.Topology(t)
	stats.ISLs = len(links)

	// ISL reconfigurations.
	cur := make(map[Link]bool, len(links))
	for _, l := range links {
		cur[l] = true
	}
	if c.started {
		for l := range cur {
			if !c.prevLinks[l] {
				stats.ISLChanges++
			}
		}
		for l := range c.prevLinks {
			if !cur[l] {
				stats.ISLChanges++
			}
		}
	} else {
		stats.ISLChanges = len(links)
	}
	c.prevLinks = cur

	// Hop-by-hop routing tables toward each destination.
	n := len(c.cfg.Sats)
	g := routing.NewGraph(n)
	pos := make([]geom.Vec3, n)
	for i, e := range c.cfg.Sats {
		pos[i] = e.PositionECI(t)
	}
	for _, l := range links {
		g.AddBiEdge(l[0], l[1], pos[l[0]].Dist(pos[l[1]]))
	}
	dests := c.cfg.Destinations
	if dests == nil {
		dests = make([]int, n)
		for i := range dests {
			dests[i] = i
		}
	}
	newRoutes := map[[2]int]int{}
	for _, d := range dests {
		parent, _ := g.ShortestPathTree(d, nil)
		key := d
		if c.cfg.RouteAggregation {
			key = c.groupOf(d, t)
		}
		for s := 0; s < n; s++ {
			if s == d || parent[s] < 0 {
				continue
			}
			rk := [2]int{s, key}
			// With aggregation, the first destination of a group fixes the
			// entry; later destinations in the same group don't add entries
			// (that is the aggregation saving).
			if _, exists := newRoutes[rk]; !exists {
				newRoutes[rk] = parent[s]
			}
		}
	}
	for rk, nh := range newRoutes {
		if old, ok := c.prevRoutes[rk]; !ok || old != nh {
			stats.RouteUpdates++
		}
	}
	for rk := range c.prevRoutes {
		if _, ok := newRoutes[rk]; !ok {
			stats.RouteUpdates++ // withdrawn entry
		}
	}
	c.prevRoutes = newRoutes
	c.started = true

	stats.Messages = int64(2*stats.ISLChanges) + stats.RouteUpdates
	return stats
}

func (c *Controller) groupOf(d int, t float64) int {
	if c.cfg.GroupOf != nil {
		return c.cfg.GroupOf(d, t)
	}
	return d / 8
}
