package tssdn

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/orbit"
)

func walkerSats() []orbit.Elements {
	return baseline.WalkerConfig{
		InclinationDeg: 53, AltitudeKm: 550, Planes: 8, SatsPerPlane: 8, PhasingF: 1,
	}.Satellites()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty constellation accepted")
	}
	if _, err := New(Config{Sats: walkerSats()}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestTopologyRespectsBudgetAndVisibility(t *testing.T) {
	c, err := New(Config{Sats: walkerSats(), MaxISLsPerSat: 3})
	if err != nil {
		t.Fatal(err)
	}
	links := c.Topology(0)
	if len(links) == 0 {
		t.Fatal("no ISLs")
	}
	degree := map[int]int{}
	for _, l := range links {
		degree[l[0]]++
		degree[l[1]]++
		a := c.cfg.Sats[l[0]].PositionECI(0)
		b := c.cfg.Sats[l[1]].PositionECI(0)
		if !c.cfg.ISL.Visible(a, b) {
			t.Errorf("invisible pair linked: %v", l)
		}
	}
	for s, d := range degree {
		if d > 3 {
			t.Errorf("sat %d degree %d", s, d)
		}
	}
}

func TestStepCountsChanges(t *testing.T) {
	c, err := New(Config{Sats: walkerSats()})
	if err != nil {
		t.Fatal(err)
	}
	first := c.Step(0)
	if first.ISLs == 0 || first.RouteUpdates == 0 {
		t.Fatalf("first slot: %+v", first)
	}
	// Identical time: no changes.
	same := c.Step(0)
	if same.ISLChanges != 0 || same.RouteUpdates != 0 {
		t.Errorf("no-motion slot reported changes: %+v", same)
	}
	// Five minutes later: LEO motion must change something.
	later := c.Step(300)
	if later.ISLChanges == 0 && later.RouteUpdates == 0 {
		t.Error("5 minutes of LEO motion produced zero reconfiguration")
	}
	if later.Messages != int64(2*later.ISLChanges)+later.RouteUpdates {
		t.Error("message accounting inconsistent")
	}
}

func TestRouteAggregationReducesUpdates(t *testing.T) {
	// The +RA variant of Figure 17 must send no more route updates than
	// the unaggregated controller over the same horizon.
	sats := walkerSats()
	plain, err := New(Config{Sats: sats})
	if err != nil {
		t.Fatal(err)
	}
	// Stable prefix-style groups (the default GroupOf). Grouping by the
	// destination's *geographic cell* would churn the aggregate keys as
	// satellites move and can send MORE updates — the paper's observation
	// that aggregation helps little under non-uniform motion.
	ra, err := New(Config{Sats: sats, RouteAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	var totalPlain, totalRA int64
	for _, tt := range []float64{0, 300, 600, 900} {
		totalPlain += plain.Step(tt).RouteUpdates
		totalRA += ra.Step(tt).RouteUpdates
	}
	if totalRA > totalPlain {
		t.Errorf("RA (%d) sent more route updates than plain (%d)", totalRA, totalPlain)
	}
	if totalRA == 0 {
		t.Error("RA suspiciously sent zero updates")
	}
}

func TestDestinationSampling(t *testing.T) {
	sats := walkerSats()
	c, err := New(Config{Sats: sats, Destinations: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Step(0)
	// With 4 destinations and 64 sats, at most 4×63 entries.
	if st.RouteUpdates > 4*63 {
		t.Errorf("route updates %d exceed sampled table size", st.RouteUpdates)
	}
	if st.RouteUpdates == 0 {
		t.Error("no routes computed")
	}
}

func TestDefaultGrouping(t *testing.T) {
	c, err := New(Config{Sats: walkerSats(), RouteAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	if g := c.groupOf(17, 0); g != 2 {
		t.Errorf("default group of 17 = %d", g)
	}
}
