package testground

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
)

// inventory walks the run directory and returns its artifact listing,
// sorted by name (report.json itself is excluded: it inventories the
// others).
func inventory(dir string) ([]Artifact, error) {
	var out []Artifact
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		if rel == ReportFile {
			return nil
		}
		out = append(out, Artifact{Name: filepath.ToSlash(rel), Bytes: info.Size()})
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, err
}

// metricsPoller snapshots a controller's /metrics.json and /fleet
// surfaces periodically, keeping the last successful responses. The
// controller exits on its own schedule; whatever the poller holds at
// that point is the run's final telemetry view if the controller's own
// exit-time artifacts are missing.
type metricsPoller struct {
	addr string
	stop chan struct{}
	done chan struct{}

	mu sync.Mutex
	//tinyleo:guardedby mu
	rawMetrics []byte
	//tinyleo:guardedby mu
	samples []obs.Sample
	//tinyleo:guardedby mu
	view *fleet.View
}

// newMetricsPoller starts polling the telemetry address at the
// interval; Stop it before reading.
func newMetricsPoller(addr string, interval time.Duration) *metricsPoller {
	p := &metricsPoller{addr: addr, stop: make(chan struct{}), done: make(chan struct{})}
	go p.loop(interval)
	return p
}

func (p *metricsPoller) loop(interval time.Duration) {
	defer close(p.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		p.pollOnce()
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
	}
}

func (p *metricsPoller) pollOnce() {
	cl := &http.Client{Timeout: 2 * time.Second}
	if resp, err := cl.Get("http://" + p.addr + "/metrics.json"); err == nil {
		func() {
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			var doc struct {
				Series []obs.Sample `json:"series"`
			}
			if json.Unmarshal(body, &doc) != nil {
				return
			}
			p.mu.Lock()
			p.rawMetrics, p.samples = body, doc.Series
			p.mu.Unlock()
		}()
	}
	if resp, err := cl.Get("http://" + p.addr + "/fleet"); err == nil {
		func() {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var v fleet.View
			if json.NewDecoder(resp.Body).Decode(&v) != nil {
				return
			}
			p.mu.Lock()
			p.view = &v
			p.mu.Unlock()
		}()
	}
}

// Stop halts polling after one final sweep.
func (p *metricsPoller) Stop() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

// Samples returns the last /metrics.json series set (nil if the
// controller was never reachable).
func (p *metricsPoller) Samples() []obs.Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.samples
}

// View returns the last /fleet document, or nil.
func (p *metricsPoller) View() *fleet.View {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.view
}

// WriteRaw dumps the last raw /metrics.json body as an artifact.
func (p *metricsPoller) WriteRaw(path string) error {
	p.mu.Lock()
	raw := p.rawMetrics
	p.mu.Unlock()
	if raw == nil {
		return fmt.Errorf("testground: no metrics snapshot collected from %s", p.addr)
	}
	return os.WriteFile(path, raw, 0o644)
}
