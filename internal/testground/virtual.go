package testground

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/obs/flightrec"
)

// ChaosReportFile is the campaign's canonical report artifact name.
const ChaosReportFile = "chaos-report.json"

// scenarioFor resolves a virtual-mode manifest into a chaos scenario:
// either a named built-in (with optional overrides) or one composed
// from the manifest's fault pool.
func scenarioFor(m *Manifest) (chaos.Scenario, error) {
	var s chaos.Scenario
	if m.Scenario != "" {
		var err error
		s, err = chaos.ScenarioByName(m.Scenario)
		if err != nil {
			return s, err
		}
	} else {
		s = chaos.Scenario{Name: m.Name, Rounds: 3}
		for _, f := range m.Faults {
			s.Faults = append(s.Faults, chaos.FaultKind(f.Kind))
		}
	}
	if m.Rounds > 0 {
		s.Rounds = m.Rounds
	}
	if m.SurgeFactor > 0 {
		s.SurgeFactor = m.SurgeFactor
	}
	if m.SLO != "" {
		s.SLO = m.SLO
	}
	return s, nil
}

// RunVirtual executes a virtual-mode plan: the manifest drives the
// in-process chaos engine on a virtual clock, the campaign's canonical
// report becomes an artifact, and the scored RunReport is derived from
// it. Same manifest + seed → byte-identical report.json.
func RunVirtual(m *Manifest, dir string) (*RunReport, error) {
	if m.Mode != ModeVirtual {
		return nil, fmt.Errorf("testground: RunVirtual on a %q-mode manifest", m.Mode)
	}
	s, err := scenarioFor(m)
	if err != nil {
		return nil, err
	}
	rep, err := chaos.Run(chaos.Campaign{
		Scenario: s,
		Seed:     m.Seed,
		Testbed: chaos.TestbedConfig{
			Sats:        m.Sats,
			CellDeg:     m.CellDeg,
			Slots:       m.Slots,
			SlotSeconds: m.SlotSeconds,
		},
		Flows:            m.Flows,
		PacketsPerWindow: m.PacketsPerWindow,
		WindowSec:        m.WindowS,
	})
	if err != nil {
		return nil, fmt.Errorf("testground: %s: %w", m.Name, err)
	}

	run := &RunReport{Plan: *m, Fleet: rollupFromChaos(rep.Fleet)}
	for _, rr := range rep.Rounds {
		for _, f := range rr.Faults {
			run.Faults = append(run.Faults, FaultRecord{AtS: float64(rr.Round), Kind: f})
		}
	}
	// The engine already scored the campaign with the manifest's spec
	// (scenarioFor threaded it through); adopt its verdicts rather than
	// re-deriving the sample set.
	run.SLO = append([]flightrec.RuleStatus(nil), rep.SLO...)
	for i := range run.SLO {
		run.SLO[i].EvalUS = 0
	}
	run.SLOBreached = rep.SLOBreached
	run.Passed = run.SLOBreached == 0

	if dir != "" {
		canon, err := rep.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, ChaosReportFile)
		if err := os.WriteFile(path, append(canon, '\n'), 0o644); err != nil {
			return nil, err
		}
		run.Artifacts = append(run.Artifacts, Artifact{Name: ChaosReportFile, Bytes: int64(len(canon) + 1)})
	}
	return run, nil
}
