package testground

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client talks to a Sync service over HTTP. The launched binaries
// (tinyleo-ctl -sync, tinyleo-sat -sync) use it to publish bound
// addresses and rendezvous at the start barrier.
type Client struct {
	// Base is the sync service URL, e.g. "http://127.0.0.1:40123".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

// NewClient normalizes a -sync flag value into a Client ("host:port"
// grows an http:// scheme).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimSuffix(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// SetParam publishes a parameter to the sync service.
func (c *Client) SetParam(name, value string) error {
	resp, err := c.http().Post(c.Base+"/param/"+url.PathEscape(name), "text/plain", strings.NewReader(value))
	if err != nil {
		return fmt.Errorf("testground: set param %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("testground: set param %s: %s", name, resp.Status)
	}
	return nil
}

// Param fetches a parameter; ok is false while it is unpublished.
func (c *Client) Param(name string) (value string, ok bool, err error) {
	resp, err := c.http().Get(c.Base + "/param/" + url.PathEscape(name))
	if err != nil {
		return "", false, fmt.Errorf("testground: get param %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return "", false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return "", false, fmt.Errorf("testground: get param %s: %s", name, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return "", false, err
	}
	return string(body), true, nil
}

// WaitParam polls the parameter until it is published or the timeout
// expires. Transport errors keep polling: the service may still be
// coming up when an agent process starts.
func (c *Client) WaitParam(name string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		v, ok, err := c.Param(name)
		if ok {
			return v, nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("not published")
			}
			return "", fmt.Errorf("testground: param %q: %v (waited %s)", name, err, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Arrive joins the named barrier (lazily defining it to release after n
// arrivals when n > 0) and blocks until every participant has arrived
// or the timeout expires.
func (c *Client) Arrive(name string, n int, timeout time.Duration) error {
	u := fmt.Sprintf("%s/barrier/%s?timeout_s=%g", c.Base, url.PathEscape(name), timeout.Seconds())
	if n > 0 {
		u += fmt.Sprintf("&n=%d", n)
	}
	// The request blocks server-side until release; bound the client a
	// little beyond the server's own timeout.
	cl := *c.http()
	cl.Timeout = timeout + 5*time.Second
	resp, err := cl.Post(u, "text/plain", nil)
	if err != nil {
		return fmt.Errorf("testground: barrier %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("testground: barrier %s: %s: %s", name, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}
