package testground

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

func startSync(t *testing.T) *Sync {
	t.Helper()
	s := NewSync()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSyncParams(t *testing.T) {
	s := startSync(t)
	c := NewClient(s.Addr()) // host:port form grows a scheme

	if _, ok, err := c.Param("addr"); ok || err != nil {
		t.Fatalf("unpublished param: ok=%v err=%v", ok, err)
	}
	if err := c.SetParam("addr", "127.0.0.1:7601"); err != nil {
		t.Fatalf("SetParam: %v", err)
	}
	v, ok, err := c.Param("addr")
	if err != nil || !ok || v != "127.0.0.1:7601" {
		t.Fatalf("Param: %q %v %v", v, ok, err)
	}
	// In-process mirror sees HTTP-published values and vice versa.
	if v, _ := s.Param("addr"); v != "127.0.0.1:7601" {
		t.Fatalf("in-process Param: %q", v)
	}
	s.SetParam("other", "x")
	if v, err := c.WaitParam("other", time.Second); err != nil || v != "x" {
		t.Fatalf("WaitParam: %q %v", v, err)
	}
}

func TestSyncWaitParamTimesOut(t *testing.T) {
	s := startSync(t)
	c := NewClient(s.URL())
	if _, err := c.WaitParam("never", 300*time.Millisecond); err == nil {
		t.Fatal("WaitParam on an unpublished param must time out")
	}
}

// TestSyncBarrier: N HTTP arrivals release together; none returns
// before the last one arrives.
func TestSyncBarrier(t *testing.T) {
	s := startSync(t)
	s.Define(BarrierAgentsReady, 3)
	c := NewClient(s.URL())

	var mu sync.Mutex
	released := 0
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Arrive(BarrierAgentsReady, 0, 5*time.Second); err != nil {
				t.Errorf("Arrive: %v", err)
			}
			mu.Lock()
			released++
			mu.Unlock()
		}()
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	if released != 0 {
		t.Fatalf("%d arrivals released before the barrier filled", released)
	}
	mu.Unlock()
	if err := c.Arrive(BarrierAgentsReady, 0, 5*time.Second); err != nil {
		t.Fatalf("final Arrive: %v", err)
	}
	wg.Wait()
	// Late arrival at a released barrier passes straight through.
	if err := c.Arrive(BarrierAgentsReady, 0, time.Second); err != nil {
		t.Fatalf("late Arrive: %v", err)
	}
	// The runner observes the release without arriving.
	if err := s.WaitReleased(BarrierAgentsReady, time.Second); err != nil {
		t.Fatalf("WaitReleased: %v", err)
	}
}

func TestSyncBarrierLazyDefine(t *testing.T) {
	s := startSync(t)
	c := NewClient(s.URL())
	// Unknown barrier without ?n= is an error.
	if err := c.Arrive("nobody-defined", 0, time.Second); err == nil {
		t.Fatal("arrive at an undefined barrier without n must fail")
	}
	// ?n=1 lazily defines and releases immediately.
	if err := c.Arrive("lazy", 1, 5*time.Second); err != nil {
		t.Fatalf("lazy Arrive: %v", err)
	}
}

func TestSyncBarrierStatusAndTimeout(t *testing.T) {
	s := startSync(t)
	s.Define("b", 2)
	errc := make(chan error, 1)
	go func() { errc <- NewClient(s.URL()).Arrive("b", 0, 300*time.Millisecond) }()
	time.Sleep(100 * time.Millisecond)

	resp, err := http.Get(s.URL() + "/barrier/b")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	var status struct {
		Need     int  `json:"need"`
		Arrived  int  `json:"arrived"`
		Released bool `json:"released"`
	}
	if err := jsonDecode(resp, &status); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if status.Need != 2 || status.Arrived != 1 || status.Released {
		t.Fatalf("status = %+v", status)
	}
	if err := <-errc; err == nil {
		t.Fatal("lone arrival must time out")
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
