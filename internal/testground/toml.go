package testground

import (
	"fmt"
	"strconv"
	"strings"
)

// parseTOML decodes the TOML subset test-plan manifests use into a
// generic document (map[string]any), which Parse then funnels through
// the JSON field names. Supported: `key = value` pairs with string,
// integer, float, boolean, and single-line array values; `[table]`
// headers; `[[array.of.tables]]` headers (the fault schedule); `#`
// comments; dotted header names. Deliberately not supported (use JSON if
// you need them): multi-line strings/arrays, inline tables, dates,
// dotted keys in assignments.
func parseTOML(data []byte) (map[string]any, error) {
	root := map[string]any{}
	current := root
	for lineNo, line := range strings.Split(string(data), "\n") {
		where := func() string { return fmt.Sprintf("testground: toml line %d", lineNo+1) }
		line = stripComment(line)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("%s: unterminated [[table]] header", where())
			}
			name := strings.TrimSpace(line[2 : len(line)-2])
			parent, leaf, err := descend(root, name)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", where(), err)
			}
			entry := map[string]any{}
			switch arr := parent[leaf].(type) {
			case nil:
				parent[leaf] = []any{entry}
			case []any:
				parent[leaf] = append(arr, entry)
			default:
				return nil, fmt.Errorf("%s: [[%s]] conflicts with earlier non-array value", where(), name)
			}
			current = entry
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("%s: unterminated [table] header", where())
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			parent, leaf, err := descend(root, name)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", where(), err)
			}
			switch tab := parent[leaf].(type) {
			case nil:
				t := map[string]any{}
				parent[leaf] = t
				current = t
			case map[string]any:
				current = tab
			default:
				return nil, fmt.Errorf("%s: [%s] conflicts with earlier non-table value", where(), name)
			}
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("%s: want key = value, got %q", where(), line)
			}
			key := strings.TrimSpace(line[:eq])
			if key == "" || strings.ContainsAny(key, " .\"") {
				return nil, fmt.Errorf("%s: bad key %q (bare keys only)", where(), key)
			}
			if _, dup := current[key]; dup {
				return nil, fmt.Errorf("%s: duplicate key %q", where(), key)
			}
			v, err := parseTOMLValue(strings.TrimSpace(line[eq+1:]))
			if err != nil {
				return nil, fmt.Errorf("%s: %v", where(), err)
			}
			current[key] = v
		}
	}
	return root, nil
}

// descend resolves a dotted table name to (parent map, leaf key),
// creating intermediate tables.
func descend(root map[string]any, name string) (map[string]any, string, error) {
	if name == "" {
		return nil, "", fmt.Errorf("empty table name")
	}
	parts := strings.Split(name, ".")
	cur := root
	for _, p := range parts[:len(parts)-1] {
		p = strings.TrimSpace(p)
		next, ok := cur[p]
		if !ok {
			t := map[string]any{}
			cur[p] = t
			cur = t
			continue
		}
		t, ok := next.(map[string]any)
		if !ok {
			return nil, "", fmt.Errorf("table %s conflicts with earlier non-table value", name)
		}
		cur = t
	}
	return cur, strings.TrimSpace(parts[len(parts)-1]), nil
}

// stripComment drops a trailing # comment, respecting quoted strings.
func stripComment(line string) string {
	inString := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inString {
				i++ // skip the escaped character
			}
		case '"':
			inString = !inString
		case '#':
			if !inString {
				return line[:i]
			}
		}
	}
	return line
}

// parseTOMLValue decodes one scalar or single-line array.
func parseTOMLValue(s string) (any, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("missing value")
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"':
		return strconv.Unquote(s)
	case s[0] == '[':
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated array %q (single-line arrays only)", s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range splitTOMLArray(inner) {
			v, err := parseTOMLValue(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return i, nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("bad value %q (want string, number, bool, or array)", s)
	}
}

// splitTOMLArray splits a single-line array body on commas outside
// quotes.
func splitTOMLArray(s string) []string {
	var parts []string
	depth, start := 0, 0
	inString := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inString {
				i++
			}
		case '"':
			inString = !inString
		case '[':
			if !inString {
				depth++
			}
		case ']':
			if !inString {
				depth--
			}
		case ',':
			if !inString && depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}
