package testground

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// loadTestdata loads a golden plan.
func loadTestdata(t *testing.T, name string) *Manifest {
	t.Helper()
	m, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return m
}

// TestRunVirtualDeterministic is the determinism contract: the same
// manifest + seed produces byte-identical scored reports and campaign
// artifacts across runs (virtual clock, no wall time anywhere).
func TestRunVirtualDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run in -short mode")
	}
	m := loadTestdata(t, "valid-virtual.toml")
	read := func(dir string) (report, chaosRep []byte) {
		t.Helper()
		rep, err := RunVirtual(m, dir)
		if err != nil {
			t.Fatalf("RunVirtual: %v", err)
		}
		if _, err := rep.WriteFile(dir); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		report, err = os.ReadFile(filepath.Join(dir, ReportFile))
		if err != nil {
			t.Fatal(err)
		}
		chaosRep, err = os.ReadFile(filepath.Join(dir, ChaosReportFile))
		if err != nil {
			t.Fatal(err)
		}
		return report, chaosRep
	}
	r1, c1 := read(t.TempDir())
	r2, c2 := read(t.TempDir())
	if !bytes.Equal(r1, r2) {
		t.Errorf("scored reports differ between identical runs:\n--- first\n%s\n--- second\n%s", r1, r2)
	}
	if !bytes.Equal(c1, c2) {
		t.Error("campaign artifacts differ between identical runs")
	}
}

// TestRunVirtualSeedMatters: a different seed must actually change the
// campaign (guards against the seed being ignored).
func TestRunVirtualSeedMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run in -short mode")
	}
	m := loadTestdata(t, "valid-virtual.toml")
	r1, err := RunVirtual(m, "")
	if err != nil {
		t.Fatalf("RunVirtual: %v", err)
	}
	reseeded := *m
	reseeded.Seed = m.Seed + 1
	r2, err := RunVirtual(&reseeded, "")
	if err != nil {
		t.Fatalf("RunVirtual reseeded: %v", err)
	}
	b1, _ := r1.CanonicalJSON()
	b2, _ := r2.CanonicalJSON()
	if bytes.Equal(b1, b2) {
		t.Error("different seeds produced identical reports")
	}
}

func TestScenarioFor(t *testing.T) {
	named := Manifest{Name: "n", Mode: ModeVirtual, Scenario: "mixed", Rounds: 2, SLO: "availability>=0.5"}.FillDefaults()
	s, err := scenarioFor(&named)
	if err != nil {
		t.Fatalf("scenarioFor: %v", err)
	}
	if s.Name != "mixed" || s.Rounds != 2 || s.SLO != "availability>=0.5" {
		t.Errorf("named scenario overrides: %+v", s)
	}
	composed := loadTestdata(t, "valid-virtual.toml")
	s, err = scenarioFor(composed)
	if err != nil {
		t.Fatalf("scenarioFor composed: %v", err)
	}
	if s.Name != "golden-virtual" || s.Rounds != 2 || len(s.Faults) != 2 || s.SurgeFactor != 4 {
		t.Errorf("composed scenario: %+v", s)
	}
	if err := func() error { _, err := scenarioFor(&Manifest{Scenario: "nope"}); return err }(); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestRunVirtualRejectsExecPlan(t *testing.T) {
	m := Manifest{Name: "e"}.FillDefaults()
	if _, err := RunVirtual(&m, ""); err == nil {
		t.Error("RunVirtual on an exec plan must error")
	}
}
