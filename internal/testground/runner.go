package testground

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/fleet"
)

// ExecConfig parameterizes an exec-mode run.
type ExecConfig struct {
	// CtlBin / SatBin are the binaries to launch (default: resolved from
	// PATH as "tinyleo-ctl" / "tinyleo-sat").
	CtlBin string
	SatBin string
	// Dir is the run directory artifacts land in (required, must exist).
	Dir string
	// Log receives orchestration progress lines (nil = discard).
	Log io.Writer
	// CtlTimeout bounds how long to wait for the controller process
	// after launch (0 = derived from the plan: run_for + hold + 120 s).
	CtlTimeout time.Duration
}

// proc is one launched agent process with its reaper.
type proc struct {
	cmd  *exec.Cmd
	done chan error // closed by the reaper with Wait's result
	log  *os.File
}

func (p *proc) exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// RunExec executes an exec-mode plan: one real tinyleo-ctl, N real
// tinyleo-sat processes over the real TCP southbound, coordinated
// through the sync service, faults injected by signaling the agent
// processes on schedule, artifacts collected into cfg.Dir, and the run
// scored with the plan's SLO rules over the final fleet snapshot plus
// the controller's last telemetry sweep.
func RunExec(m *Manifest, cfg ExecConfig) (*RunReport, error) {
	if m.Mode != ModeExec {
		return nil, fmt.Errorf("testground: RunExec on a %q-mode manifest", m.Mode)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("testground: ExecConfig.Dir is required")
	}
	if cfg.CtlBin == "" {
		cfg.CtlBin = "tinyleo-ctl"
	}
	if cfg.SatBin == "" {
		cfg.SatBin = "tinyleo-sat"
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.CtlTimeout == 0 {
		cfg.CtlTimeout = time.Duration(m.RunForS+m.HoldS)*time.Second + 120*time.Second
	}
	start := time.Now()

	// Sync service: the controller publishes its bound addresses, the
	// agents rendezvous at the start barrier.
	coord := NewSync()
	coord.Define(BarrierAgentsReady, m.Agents)
	if err := coord.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer coord.Close()
	fmt.Fprintf(cfg.Log, "sync service on %s\n", coord.URL())

	// Controller.
	ctl, err := launch(cfg.CtlBin, cfg.Dir, "ctl",
		"-listen", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
		"-sync", coord.URL(),
		"-agents", fmt.Sprint(m.Agents),
		"-slots", fmt.Sprint(m.Slots),
		"-dt", fmt.Sprint(m.SlotSeconds),
		"-workers", fmt.Sprint(m.Workers),
		"-hold", fmt.Sprintf("%gs", m.HoldS),
		"-fleet-lag", fmt.Sprintf("%gs", m.FleetLagS),
		"-fleet-silent", fmt.Sprintf("%gs", m.FleetSilentS),
		"-fleet-out", filepath.Join(cfg.Dir, "fleet.json"),
		"-record-out", filepath.Join(cfg.Dir, "ctl-flight.jsonl.gz"),
		"-trace-out", filepath.Join(cfg.Dir, "ctl-trace.jsonl"),
		"-planes", fmt.Sprint(m.Constellation.Planes),
		"-sats-per-plane", fmt.Sprint(m.Constellation.SatsPerPlane),
		"-inclination", fmt.Sprint(m.Constellation.InclinationDeg),
		"-altitude-km", fmt.Sprint(m.Constellation.AltitudeKm),
		"-phasing", fmt.Sprint(m.Constellation.PhasingF),
	)
	if err != nil {
		return nil, err
	}
	defer ctl.log.Close()
	fmt.Fprintf(cfg.Log, "controller launched (pid %d)\n", ctl.cmd.Process.Pid)

	kill := func(p *proc) {
		if !p.exited() {
			_ = p.cmd.Process.Kill()
			<-p.done
		}
	}
	defer kill(ctl)

	ctlAddr, err := coord.WaitParam(ParamControllerAddr, 30*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w (controller log: %s)", err, ctl.log.Name())
	}
	metricsAddr, err := coord.WaitParam(ParamMetricsAddr, 30*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w (controller log: %s)", err, ctl.log.Name())
	}
	fmt.Fprintf(cfg.Log, "controller southbound %s, telemetry %s\n", ctlAddr, metricsAddr)
	poller := newMetricsPoller(metricsAddr, 250*time.Millisecond)
	defer poller.Stop()

	// Agents. Each resolves the controller address through the sync
	// service and blocks at the start barrier before dialing, so the
	// whole fleet registers together.
	sats := make([]*proc, m.Agents)
	defer func() {
		for _, p := range sats {
			if p != nil {
				kill(p)
				p.log.Close()
			}
		}
	}()
	for i := 0; i < m.Agents; i++ {
		sats[i], err = launch(cfg.SatBin, cfg.Dir, fmt.Sprintf("sat-%d", i),
			"-sync", coord.URL(),
			"-id", fmt.Sprint(i),
			"-run-for", fmt.Sprintf("%gs", m.RunForS),
			"-fleet-interval", fmt.Sprintf("%dms", m.FleetIntervalMS),
			"-record-out", filepath.Join(cfg.Dir, fmt.Sprintf("sat-%d-flight.jsonl.gz", i)),
			"-trace-out", filepath.Join(cfg.Dir, fmt.Sprintf("sat-%d-trace.jsonl", i)),
		)
		if err != nil {
			return nil, err
		}
	}
	if err := coord.WaitReleased(BarrierAgentsReady, 60*time.Second); err != nil {
		return nil, fmt.Errorf("%w (controller log: %s)", err, ctl.log.Name())
	}
	t0 := time.Now()
	fmt.Fprintf(cfg.Log, "%d agents through the start barrier\n", m.Agents)

	// Fault schedule: sleep to each fault's offset from the start
	// barrier and signal the target agent process.
	faultDone := make(chan []FaultRecord, 1)
	//tinyleo:goroutine exits on its own after delivering the finite fault schedule and signalling faultDone
	go func() {
		faults := append([]FaultSpec(nil), m.Faults...)
		sort.SliceStable(faults, func(i, j int) bool { return faults[i].AtS < faults[j].AtS })
		records := make([]FaultRecord, 0, len(faults))
		for _, f := range faults {
			time.Sleep(time.Until(t0.Add(time.Duration(f.AtS * float64(time.Second)))))
			rec := FaultRecord{AtS: f.AtS, Kind: f.Kind, Agent: f.Agent}
			if err := signalFault(sats[f.Agent], f.Kind); err != nil {
				rec.Err = err.Error()
			}
			fmt.Fprintf(cfg.Log, "fault +%gs: %s agent %d %s\n", f.AtS, f.Kind, f.Agent, rec.Err)
			records = append(records, rec)
		}
		faultDone <- records
	}()

	// The controller owns the run's length: slots, then -hold.
	var runErr error
	select {
	case err := <-ctl.done:
		if err != nil {
			runErr = fmt.Errorf("controller exited: %v (log: %s)", err, ctl.log.Name())
		}
	case <-time.After(cfg.CtlTimeout):
		runErr = fmt.Errorf("controller still running after %s; killed (log: %s)", cfg.CtlTimeout, ctl.log.Name())
		kill(ctl)
	}
	fmt.Fprintf(cfg.Log, "controller done after %.1fs\n", time.Since(t0).Seconds())
	faults := <-faultDone
	poller.Stop()

	// Reap survivors: graceful first so they flush their recordings.
	for i, p := range sats {
		if p.exited() {
			continue
		}
		_ = p.cmd.Process.Signal(syscall.SIGCONT) // un-wedge stopped agents
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-p.done:
		case <-time.After(5 * time.Second):
			fmt.Fprintf(cfg.Log, "agent %d ignored SIGTERM; killing\n", i)
			kill(p)
		}
	}

	// Fleet snapshot: the controller's exit-time artifact, falling back
	// to the poller's last /fleet sweep if the controller died badly.
	view, err := fleet.ReadViewFile(filepath.Join(cfg.Dir, "fleet.json"))
	if err != nil {
		if view = poller.View(); view == nil {
			if runErr == nil {
				runErr = fmt.Errorf("no fleet snapshot: %v", err)
			}
			view = &fleet.View{}
		} else if werr := view.WriteFile(filepath.Join(cfg.Dir, "fleet.json")); werr != nil {
			return nil, werr
		}
	}
	if err := poller.WriteRaw(filepath.Join(cfg.Dir, "ctl-metrics.json")); err != nil {
		fmt.Fprintf(cfg.Log, "%v\n", err)
	}

	run := &RunReport{Plan: *m, Faults: faults, Fleet: rollupFromView(view)}
	if err := run.Score(scoreSamples(view, poller.Samples()), nil); err != nil {
		return nil, err
	}
	if runErr != nil {
		run.Err = runErr.Error()
		run.Passed = false
	}
	run.WallElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if run.Artifacts, err = inventory(cfg.Dir); err != nil {
		return nil, err
	}
	return run, nil
}

// launch starts one process with stdout+stderr teed into NAME.log in
// the run directory and a reaper goroutine feeding its done channel.
func launch(bin, dir, name string, args ...string) (*proc, error) {
	logf, err := os.Create(filepath.Join(dir, name+".log"))
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("testground: launch %s: %w", name, err)
	}
	p := &proc{cmd: cmd, done: make(chan error, 1), log: logf}
	//tinyleo:goroutine reaper exits as soon as the child process does
	go func() {
		p.done <- cmd.Wait()
		close(p.done)
	}()
	return p, nil
}

// signalFault delivers one exec-mode fault to an agent process.
func signalFault(p *proc, kind string) error {
	if p.exited() {
		return fmt.Errorf("agent already exited")
	}
	switch kind {
	case FaultKill:
		return p.cmd.Process.Kill()
	case FaultTerm:
		return p.cmd.Process.Signal(syscall.SIGTERM)
	case FaultStop:
		return p.cmd.Process.Signal(syscall.SIGSTOP)
	case FaultCont:
		return p.cmd.Process.Signal(syscall.SIGCONT)
	}
	return fmt.Errorf("unknown fault kind %q", kind)
}

// scoreSamples builds the exec-mode scoring sample set: the fleet
// snapshot's derived health series and per-agent totals, plus the
// controller's own series — minus rollup duplicates (series the fleet
// totals already carry, and per-agent split series).
func scoreSamples(view *fleet.View, ctlSamples []obs.Sample) []obs.Sample {
	out := view.SLOSamples()
	have := make(map[string]bool, len(out))
	for _, s := range out {
		have[s.Name] = true
	}
	for _, s := range ctlSamples {
		if have[s.Name] || s.Labels["agent"] != "" {
			continue
		}
		out = append(out, s)
	}
	return out
}
