package testground

// End-to-end exec mode: the runner builds the real binaries, launches
// one tinyleo-ctl plus three tinyleo-sat processes over the real TCP
// southbound, kills one agent on schedule, and the scored report must
// show the fault observed (a silent agent) and the SLO rules passing.

import (
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/obs/fleet"
)

// buildBinaries compiles tinyleo-ctl and tinyleo-sat into a temp dir.
func buildBinaries(t *testing.T) (ctlBin, satBin string) {
	t.Helper()
	dir := t.TempDir()
	ctlBin = filepath.Join(dir, "tinyleo-ctl")
	satBin = filepath.Join(dir, "tinyleo-sat")
	for bin, pkg := range map[string]string{ctlBin: "repro/cmd/tinyleo-ctl", satBin: "repro/cmd/tinyleo-sat"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}
	return ctlBin, satBin
}

func TestRunExecKillsAgentOnSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real processes")
	}
	ctlBin, satBin := buildBinaries(t)
	m := Manifest{
		Name:   "e2e",
		Agents: 3,
		Slots:  2,
		Faults: []FaultSpec{{AtS: 1, Kind: FaultKill, Agent: 1}},
		SLO:    "tinyleo_fleet_reports_total>=1,tinyleo_fleet_decode_errors_total<=0,tinyleo_fleet_agents>=3,tinyleo_fleet_agents_silent<=1",
	}.FillDefaults()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dir := t.TempDir()
	rep, err := RunExec(&m, ExecConfig{CtlBin: ctlBin, SatBin: satBin, Dir: dir})
	if err != nil {
		t.Fatalf("RunExec: %v", err)
	}
	if rep.Err != "" {
		t.Fatalf("orchestration error: %s", rep.Err)
	}
	if !rep.Passed || rep.SLOBreached != 0 {
		t.Errorf("run failed its SLO: breached=%d slo=%+v", rep.SLOBreached, rep.SLO)
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Kind != FaultKill || rep.Faults[0].Err != "" {
		t.Errorf("fault records: %+v", rep.Faults)
	}
	if rep.Fleet == nil || rep.Fleet.Agents != 3 {
		t.Fatalf("fleet rollup: %+v", rep.Fleet)
	}
	if got := rep.Fleet.States[string(fleet.StateSilent)]; got != 1 {
		t.Errorf("silent agents = %d, want 1 (the killed one): %+v", got, rep.Fleet)
	}
	if len(rep.Fleet.Silent) != 1 || rep.Fleet.Silent[0] != 1 {
		t.Errorf("silent IDs = %v, want [1]", rep.Fleet.Silent)
	}

	// The run directory holds the promised artifacts.
	view, err := fleet.ReadViewFile(filepath.Join(dir, "fleet.json"))
	if err != nil {
		t.Fatalf("fleet snapshot artifact: %v", err)
	}
	if len(view.Agents) != 3 {
		t.Errorf("snapshot agents = %d", len(view.Agents))
	}
	wantArtifacts := map[string]bool{
		"fleet.json": false, "ctl.log": false, "ctl-flight.jsonl.gz": false,
		"ctl-trace.jsonl": false, "sat-0-flight.jsonl.gz": false,
	}
	for _, a := range rep.Artifacts {
		if _, ok := wantArtifacts[a.Name]; ok {
			wantArtifacts[a.Name] = true
		}
	}
	for name, seen := range wantArtifacts {
		if !seen {
			t.Errorf("artifact %s missing from inventory: %+v", name, rep.Artifacts)
		}
	}

	// The scored report file exists and reads back.
	if _, err := rep.WriteFile(dir); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadReportFile(filepath.Join(dir, ReportFile))
	if err != nil {
		t.Fatalf("ReadReportFile: %v", err)
	}
	if !back.Passed || back.Plan.Name != "e2e" {
		t.Errorf("report round trip: %+v", back)
	}
}
