package testground

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/obs/fleet"
	"repro/internal/obs/flightrec"
)

// ReportFile is the scored report's file name inside a run directory.
const ReportFile = "report.json"

// Artifact is one collected per-run file.
type Artifact struct {
	// Name is the path relative to the run directory.
	Name string `json:"name"`
	// Bytes is the file size (zeroed in the canonical form: sizes of
	// wall-clock-bearing artifacts differ run to run).
	Bytes int64 `json:"bytes,omitempty"`
}

// FaultRecord is one injected fault as it actually happened.
type FaultRecord struct {
	// AtS is the scheduled injection time (seconds after the start
	// barrier released).
	AtS float64 `json:"at_s"`
	// Kind / Agent echo the manifest's FaultSpec.
	Kind  string `json:"kind"`
	Agent int    `json:"agent"`
	// Err records an injection that could not be applied (e.g. the
	// target already exited); empty means the signal was delivered.
	Err string `json:"err,omitempty"`
}

// FleetRollup condenses the end-of-run constellation health view into
// the scored report. In virtual mode every field is a function of
// (manifest, seed); in exec mode it reflects the real processes.
type FleetRollup struct {
	// Agents counts agents that reported at least once.
	Agents int `json:"agents"`
	// States counts agents per health state (healthy/lagging/silent).
	States map[string]int `json:"states,omitempty"`
	// Silent lists agent IDs silent at run end, ascending.
	Silent []int `json:"silent,omitempty"`
	// Reports / Gaps / DecodeErrors are fleet-wide report accounting.
	Reports      uint64 `json:"reports"`
	Gaps         uint64 `json:"gaps"`
	DecodeErrors int64  `json:"decode_errors"`
}

// RunReport is a campaign's scored outcome: the resolved plan, what was
// broken when, the fleet health rollup, the SLO verdicts, and the
// artifact inventory. CanonicalJSON strips everything wall-clock-shaped,
// so a virtual-mode run is byte-identical for the same manifest + seed.
type RunReport struct {
	// Plan is the manifest after FillDefaults — the run's full input.
	Plan Manifest `json:"plan"`
	// Faults is the schedule as executed (exec mode) or the engine's
	// per-round fault descriptions flattened (virtual mode).
	Faults []FaultRecord `json:"faults,omitempty"`
	// Fleet is the end-of-run constellation health rollup.
	Fleet *FleetRollup `json:"fleet,omitempty"`

	// SLO is the rule evaluation the run is scored with; Passed is
	// SLOBreached == 0 and the run completing without orchestration
	// errors.
	SLO         []flightrec.RuleStatus `json:"slo"`
	SLOBreached int                    `json:"slo_breached"`
	Passed      bool                   `json:"passed"`
	// Err records an orchestration failure the run survived well enough
	// to still produce a report (controller crash, missing snapshot);
	// non-empty forces Passed false.
	Err string `json:"err,omitempty"`

	// Artifacts inventories the run directory (sizes zeroed in the
	// canonical form).
	Artifacts []Artifact `json:"artifacts,omitempty"`

	// WallElapsedMS is the run's wall-clock duration: excluded from the
	// canonical form.
	WallElapsedMS float64 `json:"wall_elapsed_ms,omitempty"`
}

// Score evaluates the plan's SLO rules over the given samples and
// events, filling SLO, SLOBreached, and Passed. EvalUS is zeroed so
// verdict rows carry no wall clock.
func (r *RunReport) Score(samples []obs.Sample, events []flightrec.Event) error {
	rules, err := flightrec.ParseRules(r.Plan.SLO)
	if err != nil {
		return err
	}
	status := flightrec.EvalRules(rules, samples, events)
	r.SLOBreached = 0
	for i := range status {
		status[i].EvalUS = 0
		if status[i].Breached {
			r.SLOBreached++
		}
	}
	r.SLO = status
	r.Passed = r.SLOBreached == 0
	return nil
}

// CanonicalJSON renders the deterministic portion of the report: wall
// elapsed time and artifact byte sizes are zeroed. In virtual mode the
// remainder is a pure function of (manifest, seed), so the canonical
// bytes are run-to-run identical.
func (r *RunReport) CanonicalJSON() ([]byte, error) {
	shadow := *r
	shadow.WallElapsedMS = 0
	if len(r.Artifacts) > 0 {
		arts := make([]Artifact, len(r.Artifacts))
		for i, a := range r.Artifacts {
			arts[i] = Artifact{Name: a.Name}
		}
		shadow.Artifacts = arts
	}
	return json.MarshalIndent(&shadow, "", "  ")
}

// WriteFile writes the scored report into dir: canonical bytes in
// virtual mode (the determinism contract), the full form in exec mode.
func (r *RunReport) WriteFile(dir string) (string, error) {
	path := filepath.Join(dir, ReportFile)
	var buf []byte
	var err error
	if r.Plan.Mode == ModeVirtual {
		buf, err = r.CanonicalJSON()
	} else {
		buf, err = json.MarshalIndent(r, "", "  ")
	}
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadReportFile loads a scored report back (CI diffs and tests).
func ReadReportFile(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// rollupFromView condenses an exec-mode /fleet document.
func rollupFromView(v *fleet.View) *FleetRollup {
	r := &FleetRollup{
		Agents:       len(v.Agents),
		States:       v.States,
		DecodeErrors: v.DecodeErrors,
	}
	for _, a := range v.Agents {
		r.Reports += a.Reports
		r.Gaps += a.Gaps
		if a.State == fleet.StateSilent {
			r.Silent = append(r.Silent, int(a.ID))
		}
	}
	sort.Ints(r.Silent)
	return r
}

// rollupFromChaos condenses a virtual-mode campaign's fleet summary.
func rollupFromChaos(fs *chaos.FleetSummary) *FleetRollup {
	if fs == nil {
		return nil
	}
	return &FleetRollup{
		Agents:       fs.Agents,
		States:       fs.States,
		Silent:       fs.Silent,
		Reports:      fs.Reports,
		Gaps:         fs.Gaps,
		DecodeErrors: fs.DecodeErrors,
	}
}
