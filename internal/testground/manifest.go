package testground

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/obs/flightrec"
)

// Run modes.
const (
	// ModeExec launches one real tinyleo-ctl and N real tinyleo-sat
	// processes over the real TCP southbound, coordinated through the
	// sync service, with faults injected by signaling the processes.
	ModeExec = "exec"
	// ModeVirtual drives the same plan through the in-process chaos
	// engine on a virtual clock: same manifest + seed → byte-identical
	// scored report.
	ModeVirtual = "virtual"
)

// Exec-mode fault kinds (process signals). Virtual-mode manifests use
// the chaos engine's fault kinds (isl_down, flap_storm, sat_crash,
// conn_drop, blackhole, demand_surge) instead.
const (
	// FaultKill SIGKILLs the target agent process: no flush, no goodbye —
	// the controller's staleness ladder is the only witness.
	FaultKill = "kill"
	// FaultTerm SIGTERMs the target agent: a graceful shutdown that still
	// flushes its flight recording and trace.
	FaultTerm = "term"
	// FaultStop SIGSTOPs the target agent: the process wedges (stops
	// reporting and acking) but its TCP session stays open.
	FaultStop = "stop"
	// FaultCont SIGCONTs a previously stopped agent, resuming it.
	FaultCont = "cont"
)

// DefaultExecSLO scores an exec-mode run that declares no slo: every
// agent reported at least once and nothing on the wire was malformed.
const DefaultExecSLO = "tinyleo_fleet_reports_total>=1,tinyleo_fleet_decode_errors_total<=0"

// Constellation sizes the Walker constellation the controller compiles
// against (exec mode). Zero values take the defaults.
type Constellation struct {
	// Planes / SatsPerPlane shape the Walker grid (default 16×16).
	Planes       int `json:"planes,omitempty"`
	SatsPerPlane int `json:"sats_per_plane,omitempty"`
	// InclinationDeg / AltitudeKm set the shell (defaults 53°, 1200 km).
	InclinationDeg float64 `json:"inclination_deg,omitempty"`
	AltitudeKm     float64 `json:"altitude_km,omitempty"`
	// PhasingF is the Walker phasing factor (default 1).
	PhasingF int `json:"phasing_f,omitempty"`
}

// FaultSpec schedules one fault.
type FaultSpec struct {
	// AtS is when to inject, in seconds after every agent has passed the
	// start barrier (exec mode only; the virtual-mode engine schedules
	// its own rounds).
	AtS float64 `json:"at_s,omitempty"`
	// Kind is the fault: an exec signal kind (kill, term, stop, cont) or
	// a chaos fault kind in virtual mode.
	Kind string `json:"kind"`
	// Agent is the target agent index (exec mode; ignored in virtual
	// mode, where the engine draws targets from the seeded RNG).
	Agent int `json:"agent,omitempty"`
}

// Manifest is a declarative test plan: what to launch, how big, what to
// break when, and what "good" means. Zero fields take defaults
// (FillDefaults documents each); Validate rejects what cannot run.
type Manifest struct {
	// Name identifies the plan in reports and run directories (required).
	Name string `json:"name"`
	// Mode is ModeExec (default) or ModeVirtual.
	Mode string `json:"mode,omitempty"`
	// Seed drives every seeded choice. In virtual mode, same manifest +
	// seed → byte-identical scored report.
	Seed int64 `json:"seed,omitempty"`

	// Agents is the satellite agent count (default 3).
	Agents int `json:"agents,omitempty"`
	// Slots is the control slots the controller compiles and enforces
	// (default 2).
	Slots int `json:"slots,omitempty"`
	// SlotSeconds is the control slot duration in orbital seconds
	// (default 300).
	SlotSeconds float64 `json:"slot_seconds,omitempty"`
	// Workers is the horizon planner's worker pool size (default 2).
	Workers int `json:"workers,omitempty"`

	// Exec-mode process knobs.
	//
	// RunForS is how long each agent process stays up if not signaled
	// (default 120; the runner terminates survivors once the controller
	// exits).
	RunForS float64 `json:"run_for_s,omitempty"`
	// HoldS keeps the controller alive after its last slot so the fleet
	// staleness ladder can observe scheduled faults (default: last fault
	// time + FleetSilentS + 3, or 2 with no faults).
	HoldS float64 `json:"hold_s,omitempty"`
	// FleetIntervalMS is the agents' telemetry report interval
	// (default 200).
	FleetIntervalMS int `json:"fleet_interval_ms,omitempty"`
	// FleetLagS / FleetSilentS are the controller's staleness thresholds
	// (defaults 2 and 5 — tighter than interactive defaults so short
	// campaigns still walk the ladder).
	FleetLagS    float64 `json:"fleet_lag_s,omitempty"`
	FleetSilentS float64 `json:"fleet_silent_s,omitempty"`

	// Constellation sizes the compiled Walker shell (exec mode).
	Constellation Constellation `json:"constellation,omitempty"`

	// Faults is the fault schedule (exec) or the per-round fault pool
	// (virtual, kinds only).
	Faults []FaultSpec `json:"faults,omitempty"`
	// SLO is the flightrec rule spec the run is scored with (defaults:
	// DefaultExecSLO in exec mode, the scenario's spec in virtual mode).
	SLO string `json:"slo,omitempty"`

	// Virtual-mode campaign knobs.
	//
	// Scenario names a built-in chaos scenario; empty composes one from
	// Faults (or "baseline" if no faults are listed).
	Scenario string `json:"scenario,omitempty"`
	// Rounds overrides the scenario's fault→measure→repair cycles.
	Rounds int `json:"rounds,omitempty"`
	// SurgeFactor multiplies per-flow load during demand surges (≥2).
	SurgeFactor int `json:"surge_factor,omitempty"`
	// Sats sizes the virtual testbed constellation (default 256).
	Sats int `json:"sats,omitempty"`
	// CellDeg is the virtual testbed's geographic cell size (default 10).
	CellDeg float64 `json:"cell_deg,omitempty"`
	// Flows / PacketsPerWindow / WindowS shape the measured load (chaos
	// engine defaults: 4, 16, 2).
	Flows            int     `json:"flows,omitempty"`
	PacketsPerWindow int     `json:"packets_per_window,omitempty"`
	WindowS          float64 `json:"window_s,omitempty"`
}

// FillDefaults returns a copy with every zero field defaulted. The
// defaulting rules are part of the manifest contract and golden-tested.
func (m Manifest) FillDefaults() Manifest {
	if m.Mode == "" {
		m.Mode = ModeExec
	}
	if m.Seed == 0 {
		m.Seed = 42
	}
	if m.Agents == 0 {
		m.Agents = 3
	}
	if m.Slots == 0 {
		m.Slots = 2
	}
	if m.SlotSeconds == 0 {
		m.SlotSeconds = 300
	}
	if m.Workers == 0 {
		m.Workers = 2
	}
	if m.RunForS == 0 {
		m.RunForS = 120
	}
	if m.FleetIntervalMS == 0 {
		m.FleetIntervalMS = 200
	}
	if m.FleetLagS == 0 {
		m.FleetLagS = 2
	}
	if m.FleetSilentS == 0 {
		m.FleetSilentS = 5
	}
	if m.HoldS == 0 {
		m.HoldS = 2
		if last := m.lastFaultAt(); last >= 0 {
			m.HoldS = last + m.FleetSilentS + 3
		}
	}
	c := &m.Constellation
	if c.Planes == 0 {
		c.Planes = 16
	}
	if c.SatsPerPlane == 0 {
		c.SatsPerPlane = 16
	}
	if c.InclinationDeg == 0 {
		c.InclinationDeg = 53
	}
	if c.AltitudeKm == 0 {
		c.AltitudeKm = 1200
	}
	if c.PhasingF == 0 {
		c.PhasingF = 1
	}
	if m.SLO == "" && m.Mode == ModeExec {
		m.SLO = DefaultExecSLO
	}
	if m.Mode == ModeVirtual {
		if m.Scenario == "" && len(m.Faults) == 0 {
			m.Scenario = "baseline"
		}
		if m.Rounds == 0 && m.Scenario == "" {
			m.Rounds = 3
		}
	}
	return m
}

// lastFaultAt returns the latest scheduled fault time, or -1 with no
// faults.
func (m *Manifest) lastFaultAt() float64 {
	last := -1.0
	for _, f := range m.Faults {
		if f.AtS > last {
			last = f.AtS
		}
	}
	return last
}

// execFaultKinds is the exec-mode signal vocabulary.
var execFaultKinds = map[string]bool{
	FaultKill: true, FaultTerm: true, FaultStop: true, FaultCont: true,
}

// virtualFaultKinds is the chaos engine's vocabulary.
var virtualFaultKinds = map[string]bool{
	string(chaos.FaultISLDown):     true,
	string(chaos.FaultFlapStorm):   true,
	string(chaos.FaultSatCrash):    true,
	string(chaos.FaultConnDrop):    true,
	string(chaos.FaultBlackhole):   true,
	string(chaos.FaultDemandSurge): true,
}

// kindList renders a kind set for error messages, sorted.
func kindList(kinds map[string]bool) string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// Validate checks a defaulted manifest. Call FillDefaults first (Load
// does both).
func (m *Manifest) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("testground: manifest needs a name")
	}
	if m.Mode != ModeExec && m.Mode != ModeVirtual {
		return fmt.Errorf("testground: manifest %q: unknown mode %q (want %s or %s)", m.Name, m.Mode, ModeExec, ModeVirtual)
	}
	if m.Agents < 1 || m.Agents > 1024 {
		return fmt.Errorf("testground: manifest %q: agents = %d out of range [1, 1024]", m.Name, m.Agents)
	}
	if m.Slots < 1 {
		return fmt.Errorf("testground: manifest %q: slots = %d, want >= 1", m.Name, m.Slots)
	}
	if m.SlotSeconds <= 0 {
		return fmt.Errorf("testground: manifest %q: slot_seconds = %g, want > 0", m.Name, m.SlotSeconds)
	}
	if m.Workers < 1 {
		return fmt.Errorf("testground: manifest %q: workers = %d, want >= 1", m.Name, m.Workers)
	}
	for i, f := range m.Faults {
		switch m.Mode {
		case ModeExec:
			if !execFaultKinds[f.Kind] {
				return fmt.Errorf("testground: manifest %q: fault %d: unknown exec fault kind %q (want %s)",
					m.Name, i, f.Kind, kindList(execFaultKinds))
			}
			if f.AtS < 0 {
				return fmt.Errorf("testground: manifest %q: fault %d: at_s = %g, want >= 0", m.Name, i, f.AtS)
			}
			if f.Agent < 0 || f.Agent >= m.Agents {
				return fmt.Errorf("testground: manifest %q: fault %d: agent %d out of range [0, %d)",
					m.Name, i, f.Agent, m.Agents)
			}
		case ModeVirtual:
			if !virtualFaultKinds[f.Kind] {
				return fmt.Errorf("testground: manifest %q: fault %d: unknown chaos fault kind %q (want %s)",
					m.Name, i, f.Kind, kindList(virtualFaultKinds))
			}
		}
	}
	if m.Mode == ModeVirtual && m.Scenario != "" {
		if _, err := chaos.ScenarioByName(m.Scenario); err != nil {
			return fmt.Errorf("testground: manifest %q: %v", m.Name, err)
		}
	}
	if m.SLO != "" {
		if _, err := flightrec.ParseRules(m.SLO); err != nil {
			return fmt.Errorf("testground: manifest %q: slo: %v", m.Name, err)
		}
	}
	return nil
}

// Parse decodes a manifest from data. Format is "json" or "toml";
// unknown keys are errors in both, so typos fail loudly instead of
// silently running a default.
func Parse(data []byte, format string) (*Manifest, error) {
	var raw any
	switch format {
	case "json":
		raw = json.RawMessage(data)
	case "toml":
		doc, err := parseTOML(data)
		if err != nil {
			return nil, err
		}
		raw = doc
	default:
		return nil, fmt.Errorf("testground: unknown manifest format %q (want json or toml)", format)
	}
	// TOML decodes to a generic document first; funneling both formats
	// through JSON gives one set of field names and one strictness rule.
	buf, err := json.Marshal(raw)
	if err != nil {
		return nil, fmt.Errorf("testground: manifest: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("testground: manifest: %v", err)
	}
	return &m, nil
}

// Load reads, defaults, and validates a manifest file; the format comes
// from the extension (.json or .toml).
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var format string
	switch ext := filepath.Ext(path); ext {
	case ".json":
		format = "json"
	case ".toml":
		format = "toml"
	default:
		return nil, fmt.Errorf("testground: %s: unknown manifest extension %q (want .json or .toml)", path, ext)
	}
	m, err := Parse(data, format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	filled := m.FillDefaults()
	if err := filled.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &filled, nil
}
