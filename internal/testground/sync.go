package testground

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Well-known coordination names the runner and the binaries agree on.
const (
	// BarrierAgentsReady is the start barrier: every agent arrives after
	// resolving the controller address and before dialing it, so no
	// agent registers until the whole fleet is launched.
	BarrierAgentsReady = "agents-ready"
	// ParamControllerAddr is the controller's southbound listen address,
	// published by tinyleo-ctl -sync once it is accepting connections.
	ParamControllerAddr = "controller_addr"
	// ParamMetricsAddr is the controller's telemetry address (the /fleet
	// and /metrics surface), published by tinyleo-ctl -sync.
	ParamMetricsAddr = "metrics_addr"
)

// barrier is one named rendezvous point.
type barrier struct {
	need     int
	arrived  int
	released chan struct{}
}

// Sync is the campaign coordination service: named barriers processes
// arrive at and block on until N peers have arrived, plus a key/value
// parameter store late starters poll (the controller publishes its
// bound addresses there, so every port in a plan can be :0). It is used
// in-process by the runner and over HTTP by the launched binaries:
//
//	GET  /healthz            liveness
//	GET  /param/NAME         parameter value, 404 until published
//	POST /param/NAME         publish (body = value)
//	POST /barrier/NAME       arrive and block until released
//	                         (?n=N lazily defines, ?timeout_s= bounds)
//	GET  /barrier/NAME       {"need":N,"arrived":K,"released":bool}
type Sync struct {
	mu sync.Mutex
	//tinyleo:guardedby mu
	params map[string]string
	//tinyleo:guardedby mu
	barriers map[string]*barrier

	srv *http.Server
	ln  net.Listener
}

// NewSync builds an empty service; Define barriers, then Start it.
func NewSync() *Sync {
	return &Sync{params: map[string]string{}, barriers: map[string]*barrier{}}
}

// Define registers a barrier that releases after need arrivals. The
// first definition wins; redefining is a no-op.
func (s *Sync) Define(name string, need int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defineLocked(name, need)
}

func (s *Sync) defineLocked(name string, need int) *barrier {
	if b, ok := s.barriers[name]; ok {
		return b
	}
	b := &barrier{need: need, released: make(chan struct{})}
	if need <= 0 {
		close(b.released)
	}
	s.barriers[name] = b
	return b
}

// SetParam publishes a parameter.
func (s *Sync) SetParam(name, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.params[name] = value
}

// Param reads a parameter.
func (s *Sync) Param(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.params[name]
	return v, ok
}

// WaitParam polls until the parameter is published or the timeout
// expires (the in-process mirror of the HTTP client's WaitParam).
func (s *Sync) WaitParam(name string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		if v, ok := s.Param(name); ok {
			return v, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("testground: param %q not published within %s", name, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// arrive records one arrival and returns the channel to wait on.
func (s *Sync) arrive(name string, lazyNeed int) (*barrier, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.barriers[name]
	if !ok {
		if lazyNeed <= 0 {
			return nil, fmt.Errorf("testground: unknown barrier %q (define it, or pass ?n=)", name)
		}
		b = s.defineLocked(name, lazyNeed)
	}
	select {
	case <-b.released:
		// Late arrival at an already-released barrier passes through.
		return b, nil
	default:
	}
	b.arrived++
	if b.arrived >= b.need {
		close(b.released)
	}
	return b, nil
}

// Arrive joins the barrier in-process and blocks until it releases.
func (s *Sync) Arrive(name string, timeout time.Duration) error {
	b, err := s.arrive(name, 0)
	if err != nil {
		return err
	}
	return waitReleased(b, name, timeout)
}

// WaitReleased blocks until the barrier releases without arriving at it
// (the runner observes the fleet's start without being part of it).
func (s *Sync) WaitReleased(name string, timeout time.Duration) error {
	s.mu.Lock()
	b, ok := s.barriers[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("testground: unknown barrier %q", name)
	}
	return waitReleased(b, name, timeout)
}

func waitReleased(b *barrier, name string, timeout time.Duration) error {
	select {
	case <-b.released:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("testground: barrier %q not released within %s (%d of %d arrived)",
			name, timeout, b.arrived, b.need)
	}
}

// Start serves the sync API on addr ("127.0.0.1:0" for an ephemeral
// port; read it back with Addr or URL).
func (s *Sync) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("testground: sync listen: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s}
	//tinyleo:goroutine Serve returns when Close shuts the listener down
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr is the bound listen address.
func (s *Sync) Addr() string { return s.ln.Addr().String() }

// URL is the service base URL the -sync flags take.
func (s *Sync) URL() string { return "http://" + s.Addr() }

// Close stops the HTTP service (barrier waiters in flight are released
// with an error by the closed connection).
func (s *Sync) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// ServeHTTP routes the sync API.
func (s *Sync) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		fmt.Fprintln(w, "ok")
	case strings.HasPrefix(r.URL.Path, "/param/"):
		s.serveParam(w, r, strings.TrimPrefix(r.URL.Path, "/param/"))
	case strings.HasPrefix(r.URL.Path, "/barrier/"):
		s.serveBarrier(w, r, strings.TrimPrefix(r.URL.Path, "/barrier/"))
	default:
		http.NotFound(w, r)
	}
}

func (s *Sync) serveParam(w http.ResponseWriter, r *http.Request, name string) {
	if name == "" {
		http.Error(w, "missing parameter name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		v, ok := s.Param(name)
		if !ok {
			http.Error(w, "parameter not published: "+name, http.StatusNotFound)
			return
		}
		fmt.Fprint(w, v)
	case http.MethodPost, http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.SetParam(name, string(body))
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Sync) serveBarrier(w http.ResponseWriter, r *http.Request, name string) {
	if name == "" {
		http.Error(w, "missing barrier name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		b, ok := s.barriers[name]
		var status struct {
			Need     int  `json:"need"`
			Arrived  int  `json:"arrived"`
			Released bool `json:"released"`
		}
		if ok {
			status.Need, status.Arrived = b.need, b.arrived
			select {
			case <-b.released:
				status.Released = true
			default:
			}
		}
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown barrier: "+name, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(status)
	case http.MethodPost:
		lazyNeed := 0
		if n := r.URL.Query().Get("n"); n != "" {
			v, err := strconv.Atoi(n)
			if err != nil || v < 1 {
				http.Error(w, "bad n: "+n, http.StatusBadRequest)
				return
			}
			lazyNeed = v
		}
		timeout := 120 * time.Second
		if t := r.URL.Query().Get("timeout_s"); t != "" {
			v, err := strconv.ParseFloat(t, 64)
			if err != nil || v <= 0 {
				http.Error(w, "bad timeout_s: "+t, http.StatusBadRequest)
				return
			}
			timeout = time.Duration(v * float64(time.Second))
		}
		b, err := s.arrive(name, lazyNeed)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		select {
		case <-b.released:
			fmt.Fprintln(w, "released")
		case <-time.After(timeout):
			http.Error(w, "barrier timeout: "+name, http.StatusRequestTimeout)
		case <-r.Context().Done():
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
