package testground

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestLoadGoldenValid(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "valid-exec.json"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m.Name != "golden-exec" || m.Mode != ModeExec || m.Seed != 99 {
		t.Errorf("identity fields: %q %q %d", m.Name, m.Mode, m.Seed)
	}
	if m.Agents != 4 || m.Slots != 3 || m.SlotSeconds != 120 {
		t.Errorf("shape fields: %d %d %g", m.Agents, m.Slots, m.SlotSeconds)
	}
	if m.Constellation.Planes != 8 || m.Constellation.AltitudeKm != 550 {
		t.Errorf("constellation: %+v", m.Constellation)
	}
	want := []FaultSpec{
		{AtS: 1, Kind: FaultStop, Agent: 2},
		{AtS: 2.5, Kind: FaultCont, Agent: 2},
		{AtS: 4, Kind: FaultKill, Agent: 3},
	}
	if !reflect.DeepEqual(m.Faults, want) {
		t.Errorf("faults = %+v, want %+v", m.Faults, want)
	}
}

// TestTOMLEquivalence pins the format contract: the TOML twin of a JSON
// plan parses to the identical manifest.
func TestTOMLEquivalence(t *testing.T) {
	j, err := Load(filepath.Join("testdata", "valid-exec.json"))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	tm, err := Load(filepath.Join("testdata", "valid-exec.toml"))
	if err != nil {
		t.Fatalf("toml: %v", err)
	}
	if !reflect.DeepEqual(j, tm) {
		t.Errorf("json and toml twins diverge:\n json: %+v\n toml: %+v", j, tm)
	}
}

func TestLoadGoldenInvalid(t *testing.T) {
	cases := []struct {
		file string
		want string // substring of the error
	}{
		{"invalid-unknown-key.json", "unknown field"},
		{"invalid-fault-kind.toml", "unknown exec fault kind"},
		{"invalid-agent-range.json", "out of range"},
		{"invalid-slo.toml", "slo"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			_, err := Load(filepath.Join("testdata", tc.file))
			if err == nil {
				t.Fatalf("Load(%s): wanted an error", tc.file)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFillDefaults pins the documented defaulting rules.
func TestFillDefaults(t *testing.T) {
	m := Manifest{Name: "d"}.FillDefaults()
	if m.Mode != ModeExec {
		t.Errorf("mode = %q, want exec", m.Mode)
	}
	if m.Seed != 42 || m.Agents != 3 || m.Slots != 2 || m.SlotSeconds != 300 || m.Workers != 2 {
		t.Errorf("core defaults: %+v", m)
	}
	if m.RunForS != 120 || m.FleetIntervalMS != 200 || m.FleetLagS != 2 || m.FleetSilentS != 5 {
		t.Errorf("exec defaults: %+v", m)
	}
	if m.HoldS != 2 {
		t.Errorf("hold_s with no faults = %g, want 2", m.HoldS)
	}
	if m.SLO != DefaultExecSLO {
		t.Errorf("slo = %q, want DefaultExecSLO", m.SLO)
	}
	c := m.Constellation
	if c.Planes != 16 || c.SatsPerPlane != 16 || c.InclinationDeg != 53 || c.AltitudeKm != 1200 || c.PhasingF != 1 {
		t.Errorf("constellation defaults: %+v", c)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("defaulted manifest must validate: %v", err)
	}
}

// TestFillDefaultsHoldCoversFaults: hold_s stretches past the last fault
// so the staleness ladder can observe it.
func TestFillDefaultsHoldCoversFaults(t *testing.T) {
	m := Manifest{
		Name:   "h",
		Faults: []FaultSpec{{AtS: 4, Kind: FaultKill}, {AtS: 1, Kind: FaultTerm}},
	}.FillDefaults()
	if want := 4 + m.FleetSilentS + 3; m.HoldS != want {
		t.Errorf("hold_s = %g, want %g (last fault + silent + 3)", m.HoldS, want)
	}
}

func TestFillDefaultsVirtual(t *testing.T) {
	m := Manifest{Name: "v", Mode: ModeVirtual}.FillDefaults()
	if m.Scenario != "baseline" {
		t.Errorf("scenario with no faults = %q, want baseline", m.Scenario)
	}
	if m.SLO != "" {
		t.Errorf("virtual slo default = %q, want empty (scenario's spec)", m.SLO)
	}
	custom := Manifest{
		Name: "v2", Mode: ModeVirtual,
		Faults: []FaultSpec{{Kind: "isl_down"}},
	}.FillDefaults()
	if custom.Scenario != "" || custom.Rounds != 3 {
		t.Errorf("composed campaign: scenario=%q rounds=%d, want \"\"/3", custom.Scenario, custom.Rounds)
	}
	if err := custom.Validate(); err != nil {
		t.Errorf("composed campaign must validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Manifest { return Manifest{Name: "x"}.FillDefaults() }
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"no name", func(m *Manifest) { m.Name = "" }, "needs a name"},
		{"bad mode", func(m *Manifest) { m.Mode = "cloud" }, "unknown mode"},
		{"agents low", func(m *Manifest) { m.Agents = 0 }, "agents"},
		{"agents high", func(m *Manifest) { m.Agents = 5000 }, "agents"},
		{"slots", func(m *Manifest) { m.Slots = 0 }, "slots"},
		{"workers", func(m *Manifest) { m.Workers = -1 }, "workers"},
		{"negative fault time", func(m *Manifest) {
			m.Faults = []FaultSpec{{AtS: -1, Kind: FaultKill}}
		}, "at_s"},
		{"bad scenario", func(m *Manifest) {
			m.Mode = ModeVirtual
			m.Scenario = "nope"
		}, "unknown scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.mutate(&m)
			err := m.Validate()
			if err == nil {
				t.Fatal("wanted an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseTOMLSubset(t *testing.T) {
	doc, err := parseTOML([]byte(`
# full line comment
s = "a # not-a-comment \"quoted\""
i = -3
f = 0.5
b = true
arr = ["x", "y"]  # trailing comment

[t]
k = 1

[t.nested]
k = 2

[[rows]]
v = 1
[[rows]]
v = 2
`))
	if err != nil {
		t.Fatalf("parseTOML: %v", err)
	}
	if doc["s"] != `a # not-a-comment "quoted"` || doc["i"] != int64(-3) || doc["f"] != 0.5 || doc["b"] != true {
		t.Errorf("scalars: %+v", doc)
	}
	if !reflect.DeepEqual(doc["arr"], []any{"x", "y"}) {
		t.Errorf("arr: %+v", doc["arr"])
	}
	tbl := doc["t"].(map[string]any)
	if tbl["k"] != int64(1) || tbl["nested"].(map[string]any)["k"] != int64(2) {
		t.Errorf("tables: %+v", tbl)
	}
	rows := doc["rows"].([]any)
	if len(rows) != 2 || rows[1].(map[string]any)["v"] != int64(2) {
		t.Errorf("rows: %+v", rows)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	for _, bad := range []string{
		"key",                  // no =
		"a.b = 1",              // dotted assignment key
		"k = ",                 // missing value
		"k = [1,\n2]",          // multi-line array
		"[t\nk = 1",            // unterminated header
		"k = 1\nk = 2",         // duplicate key
		"k = 1\n[k]\nv = 2",    // table conflicts with value
		"[[r]]\nv=1\n[r]\nv=2", // table conflicts with array
		"k = 2026-08-08",       // dates unsupported
		`k = """multi`,         // multi-line string
	} {
		if _, err := parseTOML([]byte(bad)); err == nil {
			t.Errorf("parseTOML(%q): wanted an error", bad)
		}
	}
}
