package testground

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestScore(t *testing.T) {
	r := &RunReport{Plan: Manifest{
		Name: "s", Mode: ModeExec,
		SLO: "tinyleo_fleet_reports_total>=10,tinyleo_fleet_agents_silent<=0",
	}}
	samples := []obs.Sample{
		{Name: "tinyleo_fleet_reports_total", Kind: obs.KindCounter, Value: 40},
		{Name: "tinyleo_fleet_agents_silent", Kind: obs.KindGauge, Value: 1},
	}
	if err := r.Score(samples, nil); err != nil {
		t.Fatalf("Score: %v", err)
	}
	if len(r.SLO) != 2 || r.SLOBreached != 1 || r.Passed {
		t.Fatalf("verdicts: breached=%d passed=%v slo=%+v", r.SLOBreached, r.Passed, r.SLO)
	}
	if r.SLO[0].Breached || !r.SLO[1].Breached {
		t.Errorf("rule verdicts inverted: %+v", r.SLO)
	}
	for _, st := range r.SLO {
		if st.EvalUS != 0 {
			t.Errorf("EvalUS must be zeroed for reproducibility: %+v", st)
		}
	}
}

// TestCanonicalJSONStripsWallClock: the canonical form zeroes wall
// elapsed time and artifact sizes but keeps names and verdicts.
func TestCanonicalJSONStripsWallClock(t *testing.T) {
	r := &RunReport{
		Plan:          Manifest{Name: "c", Mode: ModeVirtual},
		Artifacts:     []Artifact{{Name: "chaos-report.json", Bytes: 12345}},
		WallElapsedMS: 98.7,
		Passed:        true,
	}
	canon, err := r.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if bytes.Contains(canon, []byte("12345")) || bytes.Contains(canon, []byte("wall_elapsed_ms")) {
		t.Errorf("canonical form leaks wall-clock fields:\n%s", canon)
	}
	if !bytes.Contains(canon, []byte("chaos-report.json")) {
		t.Errorf("canonical form lost the artifact name:\n%s", canon)
	}
	// The original is untouched.
	if r.Artifacts[0].Bytes != 12345 || r.WallElapsedMS != 98.7 {
		t.Errorf("CanonicalJSON mutated the report: %+v", r)
	}
}

func TestWriteAndReadReport(t *testing.T) {
	dir := t.TempDir()
	r := &RunReport{Plan: Manifest{Name: "w", Mode: ModeExec}, Passed: true, WallElapsedMS: 5}
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if filepath.Base(path) != ReportFile {
		t.Errorf("path = %s", path)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatalf("ReadReportFile: %v", err)
	}
	if back.Plan.Name != "w" || !back.Passed || back.WallElapsedMS != 5 {
		t.Errorf("round trip: %+v", back)
	}
}

// TestInventory: the artifact walk lists run files sorted, excluding
// the report itself.
func TestInventory(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"fleet.json", "ctl.log", ReportFile} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	arts, err := inventory(dir)
	if err != nil {
		t.Fatalf("inventory: %v", err)
	}
	var names []string
	for _, a := range arts {
		names = append(names, a.Name)
		if a.Bytes != 1 {
			t.Errorf("%s: bytes = %d", a.Name, a.Bytes)
		}
	}
	if got := strings.Join(names, ","); got != "ctl.log,fleet.json" {
		t.Errorf("inventory = %s", got)
	}
}

// TestReportJSONShape guards the report's serialized field names — the
// contract EXPERIMENTS.md documents and CI extracts.
func TestReportJSONShape(t *testing.T) {
	r := &RunReport{Plan: Manifest{Name: "shape"}.FillDefaults()}
	if err := r.Score(nil, nil); err != nil {
		t.Fatalf("Score: %v", err)
	}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"plan"`, `"slo"`, `"slo_breached"`, `"passed"`, `"name"`, `"mode"`} {
		if !bytes.Contains(buf, []byte(key)) {
			t.Errorf("report JSON lacks %s:\n%s", key, buf)
		}
	}
}
