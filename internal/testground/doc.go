// Package testground is the distributed campaign runner: it turns a
// declarative test-plan manifest into an orchestrated multi-process
// run of the real binaries and a scored, archivable report — the
// in-tree counterpart of running a TestGround-style testbed against
// the TinyLEO control plane.
//
// A plan (Manifest, parsed from JSON or TOML by Load) declares what to
// launch (agent count, control slots, constellation shape), what to
// break when (a fault schedule), and what "good" means (a flight
// recorder SLO rule spec). Two modes execute it:
//
//   - exec (RunExec): one real tinyleo-ctl and N real tinyleo-sat
//     processes over the real TCP southbound. A small sync service
//     (Sync: HTTP barriers + parameter distribution) coordinates
//     startup — the controller publishes its :0-bound addresses, every
//     agent resolves them and rendezvouses at the start barrier before
//     dialing. Faults are delivered as process signals (kill, term,
//     stop, cont) on schedule. Artifacts (fleet snapshot, flight
//     recordings, traces, process logs) are collected into a run
//     directory and the run is scored over the final fleet snapshot.
//
//   - virtual (RunVirtual): the same plan drives the in-process chaos
//     engine (internal/chaos) on a virtual clock. Same manifest + seed
//     → byte-identical scored report, which is what CI diffs.
//
// The scored RunReport reuses the flight recorder's SLO engine
// (internal/obs/flightrec): rules evaluate over the fleet snapshot's
// derived health series plus the controller's own telemetry, and the
// report records every verdict alongside the executed fault schedule
// and the artifact inventory.
package testground
