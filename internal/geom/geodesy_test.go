package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalizeLon(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {190, -170}, {-190, 170},
		{360, 0}, {540, -180}, {-360, 0}, {720.5, 0.5},
	}
	for _, c := range cases {
		if got := NormalizeLon(c.in); !approx(got, c.want, 1e-9) {
			t.Errorf("NormalizeLon(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeLonRange(t *testing.T) {
	f := func(x float64) bool {
		l := NormalizeLon(math.Mod(x, 1e6))
		return l >= -180 && l < 180
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := LatLon{Lat: rng.Float64()*178 - 89, Lon: rng.Float64()*360 - 180}
		got := FromUnit(p.ToUnit())
		if !approx(got.Lat, p.Lat, 1e-9) || !approx(got.Lon, p.Lon, 1e-9) {
			t.Fatalf("roundtrip %v -> %v", p, got)
		}
	}
}

func TestToECEFAltitude(t *testing.T) {
	p := LatLon{Lat: 45, Lon: 90}
	v := p.ToECEF(550e3)
	if !approx(v.Norm(), EarthRadius+550e3, 1e-6) {
		t.Errorf("ECEF norm = %v", v.Norm())
	}
}

func TestGreatCircleDistKnown(t *testing.T) {
	// Equator quarter circumference.
	d := GreatCircleDist(LatLon{0, 0}, LatLon{0, 90})
	want := EarthRadius * math.Pi / 2
	if !approx(d, want, 1) {
		t.Errorf("quarter equator = %v, want %v", d, want)
	}
	// Pole to pole.
	d = GreatCircleDist(LatLon{90, 0}, LatLon{-90, 0})
	if !approx(d, EarthRadius*math.Pi, 1) {
		t.Errorf("pole-to-pole = %v", d)
	}
	// London to New York, roughly 5,570 km.
	d = GreatCircleDist(LatLon{51.5, -0.13}, LatLon{40.7, -74.0})
	if d < 5.4e6 || d > 5.7e6 {
		t.Errorf("London-NY = %v km", d/1e3)
	}
}

func TestGreatCircleSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randPt := func() LatLon {
		return LatLon{Lat: rng.Float64()*178 - 89, Lon: rng.Float64()*360 - 180}
	}
	for i := 0; i < 200; i++ {
		a, b, c := randPt(), randPt(), randPt()
		if !approx(GreatCircleDist(a, b), GreatCircleDist(b, a), 1e-6) {
			t.Fatal("distance not symmetric")
		}
		// Triangle inequality with slack for fp error.
		if GreatCircleDist(a, c) > GreatCircleDist(a, b)+GreatCircleDist(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestIntermediateEndpoints(t *testing.T) {
	a := LatLon{10, 20}
	b := LatLon{-35, 140}
	if got := Intermediate(a, b, 0); GreatCircleDist(got, a) > 1 {
		t.Errorf("f=0: %v", got)
	}
	if got := Intermediate(a, b, 1); GreatCircleDist(got, b) > 1 {
		t.Errorf("f=1: %v", got)
	}
	mid := Intermediate(a, b, 0.5)
	if !approx(GreatCircleDist(a, mid), GreatCircleDist(mid, b), 1) {
		t.Errorf("midpoint not equidistant")
	}
}

func TestGreatCirclePointsMonotone(t *testing.T) {
	a := LatLon{0, 0}
	b := LatLon{0, 120}
	pts := GreatCirclePoints(a, b, 12)
	if len(pts) != 13 {
		t.Fatalf("len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		step := GreatCircleDist(pts[i-1], pts[i])
		want := GreatCircleDist(a, b) / 12
		if !approx(step, want, 1) {
			t.Fatalf("uneven step %d: %v vs %v", i, step, want)
		}
	}
}

func TestElevationAngle(t *testing.T) {
	g := LatLon{0, 0}
	// Satellite directly overhead: elevation π/2.
	sat := g.ToECEF(550e3)
	if el := ElevationAngle(g, sat); !approx(el, math.Pi/2, 1e-9) {
		t.Errorf("overhead el = %v", el)
	}
	// Satellite on the horizon plane (90° away at same altitude): negative.
	sat2 := LatLon{0, 90}.ToECEF(550e3)
	if el := ElevationAngle(g, sat2); el > 0 {
		t.Errorf("far satellite visible: el=%v", el)
	}
}

func TestCoverageAngularRadius(t *testing.T) {
	// At 550 km and 25° min elevation, coverage radius ≈ 8.6°
	// (standard Starlink-like cell geometry).
	lam := CoverageAngularRadius(550e3, Deg2Rad(25))
	if deg := Rad2Deg(lam); deg < 7 || deg > 10.5 {
		t.Errorf("coverage radius at 550km/25° = %v°", deg)
	}
	// Higher altitude covers more; higher elevation covers less.
	if CoverageAngularRadius(1200e3, Deg2Rad(25)) <= lam {
		t.Error("higher altitude should widen coverage")
	}
	if CoverageAngularRadius(550e3, Deg2Rad(40)) >= lam {
		t.Error("higher min elevation should shrink coverage")
	}
}

func TestCoverageElevationConsistency(t *testing.T) {
	// A ground point exactly λ away from the sub-satellite point must see the
	// satellite at exactly the minimum elevation.
	alt := 700e3
	el := Deg2Rad(30)
	lam := CoverageAngularRadius(alt, el)
	g := LatLon{0, 0}
	sub := LatLon{0, Rad2Deg(lam)}
	sat := sub.ToECEF(alt)
	got := ElevationAngle(g, sat)
	if !approx(got, el, 1e-9) {
		t.Errorf("elevation at coverage edge = %v°, want %v°", Rad2Deg(got), Rad2Deg(el))
	}
}

func TestSlantRange(t *testing.T) {
	if d := SlantRange(550e3, 0); !approx(d, 550e3, 1e-6) {
		t.Errorf("nadir slant = %v", d)
	}
	if SlantRange(550e3, Deg2Rad(10)) <= 550e3 {
		t.Error("off-nadir slant should exceed altitude")
	}
}

func TestLineOfSight(t *testing.T) {
	a := LatLon{0, 0}.ToECEF(550e3)
	b := LatLon{0, 20}.ToECEF(550e3)
	if !LineOfSight(a, b, 80e3) {
		t.Error("nearby satellites should see each other")
	}
	// Antipodal satellites are blocked by the Earth.
	c := LatLon{0, 180}.ToECEF(550e3)
	if LineOfSight(a, c, 80e3) {
		t.Error("antipodal satellites must be occluded")
	}
	// Same point.
	if !LineOfSight(a, a, 80e3) {
		t.Error("coincident satellites above surface should have LOS")
	}
}

func TestInitialBearing(t *testing.T) {
	// Due east along the equator.
	b := InitialBearing(LatLon{0, 0}, LatLon{0, 10})
	if !approx(b, math.Pi/2, 1e-9) {
		t.Errorf("east bearing = %v", b)
	}
	// Due north.
	b = InitialBearing(LatLon{0, 0}, LatLon{10, 0})
	if !approx(b, 0, 1e-9) {
		t.Errorf("north bearing = %v", b)
	}
}
