// Package geom provides the geometric substrate for TinyLEO: 3-vectors,
// rotation matrices, geodetic/Cartesian conversions on a spherical Earth,
// great-circle math, and spherical point-in-polygon tests.
//
// Conventions:
//   - ECI (Earth-centered inertial) and ECEF (Earth-centered Earth-fixed)
//     frames are right-handed with +Z through the north pole.
//   - Latitudes and longitudes are in degrees in public APIs (matching the
//     paper's tables) and radians in the low-level math.
//   - Distances are in meters unless a name says otherwise.
package geom

import "math"

// Physical constants shared across the toolkit. The paper's orbital numbers
// (Table 1) are reproduced with these values to within ~1%.
const (
	// EarthRadius is the mean spherical Earth radius in meters.
	EarthRadius = 6371.0e3
	// EarthMu is the geocentric gravitational constant (m^3/s^2).
	EarthMu = 3.986004418e14
	// SiderealDay is the Earth's rotation period relative to the fixed
	// stars, in seconds. Earth-repeat ground tracks repeat after p sidereal
	// days and q orbital revolutions.
	SiderealDay = 86164.0905
	// SolarDay is the mean solar day in seconds (the paper's "24h").
	SolarDay = 86400.0
	// C is the speed of light in vacuum (m/s), used for propagation delay.
	C = 299792458.0
)

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// Vec3 is a Cartesian 3-vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v/|v|. The zero vector is returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns |v - w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// DistSq returns |v - w|² without the square root, for range comparisons
// on hot paths (compare against the squared threshold).
func (v Vec3) DistSq(w Vec3) float64 {
	d := v.Sub(w)
	return d.Dot(d)
}

// AngleTo returns the angle between v and w in radians, in [0, π].
// It is numerically stable near 0 and π (atan2 formulation).
func (v Vec3) AngleTo(w Vec3) float64 {
	return math.Atan2(v.Cross(w).Norm(), v.Dot(w))
}

// RotZ rotates v by angle a (radians) about the +Z axis.
func (v Vec3) RotZ(a float64) Vec3 {
	s, c := math.Sincos(a)
	return Vec3{c*v.X - s*v.Y, s*v.X + c*v.Y, v.Z}
}

// RotX rotates v by angle a (radians) about the +X axis.
func (v Vec3) RotX(a float64) Vec3 {
	s, c := math.Sincos(a)
	return Vec3{v.X, c*v.Y - s*v.Z, s*v.Y + c*v.Z}
}
