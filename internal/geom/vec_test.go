package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm(); !approx(got, math.Sqrt(14), eps) {
		t.Errorf("Norm = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100)}
		b := Vec3{math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100)}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitNorm(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := Vec3{math.Mod(x, 1e6), math.Mod(y, 1e6), math.Mod(z, 1e6)}
		if v.Norm() == 0 {
			return v.Unit() == v
		}
		return approx(v.Unit().Norm(), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleTo(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if got := x.AngleTo(y); !approx(got, math.Pi/2, eps) {
		t.Errorf("AngleTo(x,y) = %v, want π/2", got)
	}
	if got := x.AngleTo(x.Scale(3)); !approx(got, 0, eps) {
		t.Errorf("AngleTo(x,3x) = %v, want 0", got)
	}
	if got := x.AngleTo(x.Scale(-1)); !approx(got, math.Pi, eps) {
		t.Errorf("AngleTo(x,-x) = %v, want π", got)
	}
}

func TestRotZPreservesNormAndZ(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		a := rng.Float64() * 2 * math.Pi
		r := v.RotZ(a)
		if !approx(r.Norm(), v.Norm(), 1e-9) {
			t.Fatalf("RotZ changed norm: %v -> %v", v.Norm(), r.Norm())
		}
		if !approx(r.Z, v.Z, eps) {
			t.Fatalf("RotZ changed Z")
		}
	}
}

func TestRotXRotZComposition(t *testing.T) {
	// Rotating +90° then -90° about the same axis is identity.
	v := Vec3{0.3, -1.2, 2.5}
	got := v.RotX(math.Pi / 2).RotX(-math.Pi / 2)
	if got.Dist(v) > 1e-12 {
		t.Errorf("RotX roundtrip drifted: %v vs %v", got, v)
	}
	got = v.RotZ(1.1).RotZ(-1.1)
	if got.Dist(v) > 1e-12 {
		t.Errorf("RotZ roundtrip drifted: %v vs %v", got, v)
	}
}

func TestRotZKnown(t *testing.T) {
	v := Vec3{1, 0, 0}.RotZ(math.Pi / 2)
	if v.Dist(Vec3{0, 1, 0}) > eps {
		t.Errorf("RotZ(π/2) of x̂ = %v, want ŷ", v)
	}
	w := Vec3{0, 1, 0}.RotX(math.Pi / 2)
	if w.Dist(Vec3{0, 0, 1}) > eps {
		t.Errorf("RotX(π/2) of ŷ = %v, want ẑ", w)
	}
}
