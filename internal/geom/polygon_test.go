package geom

import "testing"

func TestPolygonContainsSquare(t *testing.T) {
	sq := Polygon{{0, 0}, {0, 10}, {10, 10}, {10, 0}}
	in := []LatLon{{5, 5}, {1, 1}, {9, 9}}
	out := []LatLon{{-1, 5}, {5, 11}, {11, 5}, {5, -1}, {50, 50}}
	for _, p := range in {
		if !sq.Contains(p) {
			t.Errorf("%v should be inside", p)
		}
	}
	for _, p := range out {
		if sq.Contains(p) {
			t.Errorf("%v should be outside", p)
		}
	}
}

func TestPolygonAntimeridian(t *testing.T) {
	// Polygon spanning the antimeridian written with lon > 180.
	poly := Polygon{{-10, 170}, {-10, 190}, {10, 190}, {10, 170}}
	if !poly.Contains(LatLon{0, 175}) {
		t.Error("175E should be inside")
	}
	if !poly.Contains(LatLon{0, -175}) {
		t.Error("175W (unwrapped 185) should be inside")
	}
	if poly.Contains(LatLon{0, 160}) {
		t.Error("160E should be outside")
	}
	if poly.Contains(LatLon{0, -160}) {
		t.Error("160W should be outside")
	}
}

func TestPolygonConcave(t *testing.T) {
	// A "U" shape on the lat/lon plane: two vertical arms at lon [0,4] and
	// [6,10] joined by a base at lat [0,2]; the notch is lat>2, lon in (4,6).
	u := Polygon{
		{0, 0}, {0, 10}, {10, 10}, {10, 6}, {2, 6}, {2, 4}, {10, 4}, {10, 0},
	}
	if !u.Contains(LatLon{5, 1}) {
		t.Error("left arm point should be inside")
	}
	if !u.Contains(LatLon{5, 9}) {
		t.Error("right arm point should be inside")
	}
	if !u.Contains(LatLon{1, 5}) {
		t.Error("base point should be inside")
	}
	if u.Contains(LatLon{5, 5}) {
		t.Error("notch point should be outside")
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if (Polygon{}).Contains(LatLon{0, 0}) {
		t.Error("empty polygon contains nothing")
	}
	if (Polygon{{0, 0}, {1, 1}}).Contains(LatLon{0.5, 0.5}) {
		t.Error("2-vertex polygon contains nothing")
	}
}

func TestPolygonBBox(t *testing.T) {
	poly := Polygon{{-10, 20}, {30, -40}, {5, 170}}
	minLat, minLon, maxLat, maxLon := poly.BBox()
	if minLat != -10 || maxLat != 30 || minLon != -40 || maxLon != 170 {
		t.Errorf("bbox = %v %v %v %v", minLat, minLon, maxLat, maxLon)
	}
}
