package geom

// Polygon is a closed polygon on the lat/lon plane (equirectangular), used
// for coarse region and continent outlines. Vertices are in degrees; the
// last vertex is implicitly connected back to the first.
//
// Longitude wraparound: polygons may use longitudes outside [-180,180) (e.g.
// 190 for -170) so that edges never span more than 180° of longitude; the
// containment test unwraps the query point accordingly.
type Polygon []LatLon

// Contains reports whether p is inside the polygon using the even-odd ray
// casting rule on the lat/lon plane. Points exactly on an edge may land on
// either side; the continent masks used by TinyLEO are coarse enough that
// this does not matter.
func (poly Polygon) Contains(p LatLon) bool {
	if len(poly) < 3 {
		return false
	}
	// Try the query longitude in its three unwrapped aliases so polygons
	// crossing the antimeridian are handled.
	for _, lon := range [3]float64{p.Lon - 360, p.Lon, p.Lon + 360} {
		if poly.containsRaw(p.Lat, lon) {
			return true
		}
	}
	return false
}

func (poly Polygon) containsRaw(lat, lon float64) bool {
	inside := false
	n := len(poly)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		yi, xi := poly[i].Lat, poly[i].Lon
		yj, xj := poly[j].Lat, poly[j].Lon
		if (yi > lat) != (yj > lat) {
			x := (xj-xi)*(lat-yi)/(yj-yi) + xi
			if lon < x {
				inside = !inside
			}
		}
	}
	return inside
}

// BBox returns the polygon's bounding box (minLat, minLon, maxLat, maxLon).
func (poly Polygon) BBox() (minLat, minLon, maxLat, maxLon float64) {
	minLat, minLon = 91, 1e9
	maxLat, maxLon = -91, -1e9
	for _, v := range poly {
		if v.Lat < minLat {
			minLat = v.Lat
		}
		if v.Lat > maxLat {
			maxLat = v.Lat
		}
		if v.Lon < minLon {
			minLon = v.Lon
		}
		if v.Lon > maxLon {
			maxLon = v.Lon
		}
	}
	return
}
