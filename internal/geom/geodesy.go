package geom

import "math"

// LatLon is a geodetic coordinate on the spherical Earth, in degrees.
// Longitude is normalized to [-180, 180).
type LatLon struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, [-180, 180)
}

// NormalizeLon maps any longitude in degrees into [-180, 180).
func NormalizeLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}

// NormalizeAngle maps any angle in radians into [-π, π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a+math.Pi, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a - math.Pi
}

// ToUnit converts a LatLon to a unit vector in ECEF.
func (p LatLon) ToUnit() Vec3 {
	lat, lon := Deg2Rad(p.Lat), Deg2Rad(p.Lon)
	cl := math.Cos(lat)
	return Vec3{cl * math.Cos(lon), cl * math.Sin(lon), math.Sin(lat)}
}

// ToECEF converts a LatLon at altitude alt (meters above the surface) to an
// ECEF position vector.
func (p LatLon) ToECEF(alt float64) Vec3 {
	return p.ToUnit().Scale(EarthRadius + alt)
}

// FromUnit converts a (not necessarily unit) ECEF vector to LatLon.
func FromUnit(v Vec3) LatLon {
	u := v.Unit()
	lat := Rad2Deg(math.Asin(clamp(u.Z, -1, 1)))
	lon := Rad2Deg(math.Atan2(u.Y, u.X))
	return LatLon{Lat: lat, Lon: NormalizeLon(lon)}
}

// CentralAngle returns the great-circle central angle between p and q in
// radians.
func CentralAngle(p, q LatLon) float64 {
	return p.ToUnit().AngleTo(q.ToUnit())
}

// GreatCircleDist returns the surface distance between p and q in meters.
func GreatCircleDist(p, q LatLon) float64 {
	return EarthRadius * CentralAngle(p, q)
}

// InitialBearing returns the initial great-circle bearing from p toward q,
// in radians clockwise from north, in [-π, π).
func InitialBearing(p, q LatLon) float64 {
	φ1, φ2 := Deg2Rad(p.Lat), Deg2Rad(q.Lat)
	Δλ := Deg2Rad(q.Lon - p.Lon)
	y := math.Sin(Δλ) * math.Cos(φ2)
	x := math.Cos(φ1)*math.Sin(φ2) - math.Sin(φ1)*math.Cos(φ2)*math.Cos(Δλ)
	return math.Atan2(y, x)
}

// Intermediate returns the point a fraction f ∈ [0,1] of the way along the
// great circle from p to q (spherical linear interpolation).
func Intermediate(p, q LatLon, f float64) LatLon {
	a, b := p.ToUnit(), q.ToUnit()
	ω := a.AngleTo(b)
	if ω < 1e-12 {
		return p
	}
	s := math.Sin(ω)
	v := a.Scale(math.Sin((1-f)*ω) / s).Add(b.Scale(math.Sin(f*ω) / s))
	return FromUnit(v)
}

// GreatCirclePoints samples n+1 points (inclusive of both endpoints) along
// the great circle from p to q.
func GreatCirclePoints(p, q LatLon, n int) []LatLon {
	if n < 1 {
		n = 1
	}
	pts := make([]LatLon, 0, n+1)
	for i := 0; i <= n; i++ {
		pts = append(pts, Intermediate(p, q, float64(i)/float64(n)))
	}
	return pts
}

// ElevationAngle returns the elevation of a satellite at ECEF position sat
// as seen from ground point g (on the surface), in radians. Negative values
// mean the satellite is below the local horizon.
func ElevationAngle(g LatLon, sat Vec3) float64 {
	gp := g.ToECEF(0)
	los := sat.Sub(gp)
	// Angle between line-of-sight and local zenith (gp direction).
	zen := gp.Unit()
	return math.Pi/2 - zen.AngleTo(los.Unit())
}

// CoverageAngularRadius returns the maximum Earth-central angle λ (radians)
// between a satellite's sub-satellite point and a ground point such that the
// ground point sees the satellite above elevation el (radians), for a
// satellite at altitude alt meters.
//
// Geometry: sin(η) = Re·cos(el)/(Re+alt) where η is the nadir angle, and
// λ = π/2 − el − η.
func CoverageAngularRadius(alt, el float64) float64 {
	sinEta := EarthRadius * math.Cos(el) / (EarthRadius + alt)
	eta := math.Asin(clamp(sinEta, -1, 1))
	return math.Pi/2 - el - eta
}

// SlantRange returns the distance (m) from a ground point to a satellite at
// altitude alt whose sub-satellite point is a central angle λ away.
func SlantRange(alt, lambda float64) float64 {
	r := EarthRadius + alt
	return math.Sqrt(EarthRadius*EarthRadius + r*r - 2*EarthRadius*r*math.Cos(lambda))
}

// LineOfSight reports whether two ECEF/ECI positions can see each other
// without the Earth (plus an atmospheric grazing margin, in meters)
// obstructing the segment between them.
func LineOfSight(a, b Vec3, margin float64) bool {
	// Minimum distance from Earth's center to segment ab.
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 {
		return a.Norm() > EarthRadius+margin
	}
	t := -a.Dot(ab) / den
	t = clamp(t, 0, 1)
	closest := a.Add(ab.Scale(t))
	return closest.Norm() > EarthRadius+margin
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
