// Package netem is a discrete-event packet-network emulator: the execution
// substrate for TinyLEO's data-plane experiments (§6.3). It models links
// with finite rate, speed-of-light propagation delay, bounded FIFO queues,
// and link up/down state, and measures utilization, drops, and delivery
// latency. It plays the role StarryNet's container testbed plays in the
// paper — the measured quantities (per-hop forwarding behaviour, RTT,
// throughput, failover time) are identical.
package netem

import (
	"container/heap"
	"math"
)

// Sim is a discrete-event simulator clock.
type Sim struct {
	now    float64
	seq    int64
	events eventQueue
}

// NewSim creates a simulator at time 0.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Schedule runs fn after delay seconds (delay ≥ 0).
func (s *Sim) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic("netem: negative delay")
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Step executes the next event; returns false when none remain.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the clock passes until.
func (s *Sim) Run(until float64) {
	for s.events.Len() > 0 {
		if s.events[0].at > until {
			s.now = until
			return
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }

type event struct {
	at  float64
	seq int64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Link is a bidirectional point-to-point link between two node IDs with a
// serialization rate, propagation delay, and a bounded per-direction FIFO.
type Link struct {
	sim *Sim
	// A and B are the endpoint node IDs.
	A, B int
	// RateBps is the serialization rate in bits per second.
	RateBps float64
	// Delay is the one-way propagation delay in seconds.
	Delay float64
	// QueueLimit is the per-direction queue capacity in packets (0 =
	// unbounded).
	QueueLimit int

	up      bool
	deliver func(at, from int, payload any)
	// downEpoch counts Down() transitions; packets capture it at send time
	// so a flap entirely within a packet's flight still loses the packet.
	downEpoch int64

	dir [2]*direction
	// Stats
	TxPackets, RxPackets, Drops int64
	TxBytes                     int64
	// LostInFlight counts packets lost because the link went down while
	// they were in flight (also included in Drops).
	LostInFlight int64
}

type direction struct {
	busyUntil float64
	queued    int
	busyAccum float64 // total serialization time, for utilization
}

// NewLink creates an up link; deliver is invoked at the receiving node
// when a packet arrives (at = receiver ID, from = sender ID).
func NewLink(sim *Sim, a, b int, rateBps, delay float64, queueLimit int, deliver func(at, from int, payload any)) *Link {
	return &Link{
		sim: sim, A: a, B: b, RateBps: rateBps, Delay: delay,
		QueueLimit: queueLimit, up: true, deliver: deliver,
		dir: [2]*direction{{}, {}},
	}
}

// Up / Down toggle link state; packets in flight when the link goes down
// are lost, even if the link is back up by the time they would arrive.
func (l *Link) Up() { l.up = true }

// Down takes the link down and advances its down-epoch, dooming every
// packet currently in flight (checked at delivery time).
func (l *Link) Down() {
	l.up = false
	l.downEpoch++
}

// IsUp reports the administrative link state.
func (l *Link) IsUp() bool { return l.up }

// Peer returns the other endpoint of the link relative to node id, or -1.
func (l *Link) Peer(id int) int {
	switch id {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	return -1
}

// Send transmits sizeBytes of payload from node `from` toward the peer.
// It returns false if the link is down, from is not an endpoint, or the
// queue is full (the packet is dropped and counted).
func (l *Link) Send(from int, sizeBytes int, payload any) bool {
	to := l.Peer(from)
	if to < 0 {
		panic("netem: Send from non-endpoint")
	}
	if !l.up {
		l.Drops++
		return false
	}
	d := l.dir[l.dirIndex(from)]
	if l.QueueLimit > 0 && d.queued >= l.QueueLimit {
		l.Drops++
		return false
	}
	ser := 0.0
	if l.RateBps > 0 {
		ser = float64(sizeBytes*8) / l.RateBps
	}
	start := math.Max(l.sim.now, d.busyUntil)
	d.busyUntil = start + ser
	d.busyAccum += ser
	d.queued++
	l.TxPackets++
	l.TxBytes += int64(sizeBytes)
	arrive := d.busyUntil + l.Delay
	epoch := l.downEpoch
	l.sim.Schedule(arrive-l.sim.now, func() {
		d.queued--
		if !l.up || l.downEpoch != epoch {
			// The link went down at some point during this packet's
			// flight (possibly flapping back up before arrival): the
			// packet is lost per the Up/Down contract.
			l.Drops++
			l.LostInFlight++
			return
		}
		l.RxPackets++
		if l.deliver != nil {
			l.deliver(to, from, payload)
		}
	})
	return true
}

func (l *Link) dirIndex(from int) int {
	if from == l.A {
		return 0
	}
	return 1
}

// Utilization returns the fraction of [0, now] this link spent serializing
// in either direction (max over directions), the Figure 19c metric.
func (l *Link) Utilization() float64 {
	if l.sim.now == 0 {
		return 0
	}
	u0 := l.dir[0].busyAccum / l.sim.now
	u1 := l.dir[1].busyAccum / l.sim.now
	if u1 > u0 {
		return u1
	}
	return u0
}

// QueuedPackets returns packets currently queued or in flight from node id.
func (l *Link) QueuedPackets(id int) int { return l.dir[l.dirIndex(id)].queued }
