package netem

import "math/rand"

// Impairment models stochastic link degradation — the paper's §4.3
// motivation ("solar storms and cosmic radiations", intermittent ISLs):
// random packet loss and random link flaps. Deterministic given the seed.
type Impairment struct {
	// LossRate drops each delivered packet independently with this
	// probability (0 disables).
	LossRate float64
	// LossUntil, when positive, bounds stochastic loss to sim times before
	// it (a "storm window"); zero means loss applies for the whole run.
	LossUntil float64
	// FlapRate is the per-second hazard of the link going down; FlapDown
	// is how long it stays down. Zero disables flapping.
	FlapRate float64
	FlapDown float64

	// Losses counts packets dropped by the stochastic loss model. It is
	// deliberately separate from Link.Drops, which counts queue-overflow
	// and link-down drops: conflating channel loss with congestion drops
	// would skew any congestion analysis built on Link stats.
	Losses int64

	rng *rand.Rand
}

// NewImpairment creates a deterministic impairment model.
func NewImpairment(seed int64, lossRate float64) *Impairment {
	return &Impairment{LossRate: lossRate, rng: rand.New(rand.NewSource(seed))}
}

// Attach arms the impairment on a link: losses are applied at delivery
// time, flaps are scheduled on the simulator until horizon.
func (im *Impairment) Attach(sim *Sim, l *Link, horizon float64) {
	if im.LossRate > 0 {
		inner := l.deliver
		l.deliver = func(at, from int, payload any) {
			if im.LossUntil <= 0 || sim.Now() < im.LossUntil {
				if im.rng.Float64() < im.LossRate {
					im.Losses++
					return
				}
			}
			if inner != nil {
				inner(at, from, payload)
			}
		}
	}
	if im.FlapRate > 0 && im.FlapDown > 0 {
		var scheduleFlap func()
		scheduleFlap = func() {
			// Exponential inter-arrival via inverse transform.
			wait := im.rng.ExpFloat64() / im.FlapRate
			at := sim.Now() + wait
			if at > horizon {
				return
			}
			sim.Schedule(wait, func() {
				l.Down()
				sim.Schedule(im.FlapDown, func() {
					l.Up()
					scheduleFlap()
				})
			})
		}
		scheduleFlap()
	}
}
