package netem

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSim()
	fired := 0
	s.Schedule(1, func() {
		s.Schedule(1, func() { fired++ })
	})
	s.Run(3)
	if fired != 1 {
		t.Errorf("nested event fired %d times", fired)
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(5, func() { fired = true })
	s.Run(2)
	if fired {
		t.Error("event past horizon fired")
	}
	if s.Now() != 2 {
		t.Errorf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run(10)
	if !fired {
		t.Error("event never fired")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay accepted")
		}
	}()
	NewSim().Schedule(-1, func() {})
}

func TestLinkDelivery(t *testing.T) {
	s := NewSim()
	var gotAt float64
	var gotPayload any
	l := NewLink(s, 1, 2, 8000, 0.01, 0, func(at, from int, payload any) {
		if at != 2 || from != 1 {
			t.Errorf("delivered at=%d from=%d", at, from)
		}
		gotAt = s.Now()
		gotPayload = payload
	})
	// 100 bytes at 8000 bps = 0.1 s serialization + 0.01 propagation.
	if !l.Send(1, 100, "hello") {
		t.Fatal("send failed")
	}
	s.Run(1)
	if math.Abs(gotAt-0.11) > 1e-9 {
		t.Errorf("arrival at %v, want 0.11", gotAt)
	}
	if gotPayload != "hello" {
		t.Errorf("payload = %v", gotPayload)
	}
	if l.TxPackets != 1 || l.RxPackets != 1 || l.TxBytes != 100 {
		t.Errorf("stats: %+v", *l)
	}
}

func TestLinkSerializationQueuing(t *testing.T) {
	s := NewSim()
	var arrivals []float64
	l := NewLink(s, 1, 2, 8000, 0, 0, func(at, from int, payload any) {
		arrivals = append(arrivals, s.Now())
	})
	// Two back-to-back 100-byte packets: 0.1 s each, FIFO.
	l.Send(1, 100, nil)
	l.Send(1, 100, nil)
	s.Run(1)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if math.Abs(arrivals[0]-0.1) > 1e-9 || math.Abs(arrivals[1]-0.2) > 1e-9 {
		t.Errorf("arrivals = %v, want [0.1 0.2]", arrivals)
	}
}

func TestLinkBidirectionalIndependentQueues(t *testing.T) {
	s := NewSim()
	n := 0
	l := NewLink(s, 1, 2, 8000, 0, 0, func(at, from int, payload any) { n++ })
	l.Send(1, 100, nil)
	l.Send(2, 100, nil)
	s.Run(0.15)
	if n != 2 {
		t.Errorf("directions not independent: %d arrived", n)
	}
}

func TestLinkQueueLimitDrops(t *testing.T) {
	s := NewSim()
	delivered := 0
	l := NewLink(s, 1, 2, 8000, 0, 2, func(at, from int, payload any) { delivered++ })
	ok1 := l.Send(1, 100, nil)
	ok2 := l.Send(1, 100, nil)
	ok3 := l.Send(1, 100, nil) // exceeds queue of 2
	if !ok1 || !ok2 || ok3 {
		t.Errorf("sends: %v %v %v", ok1, ok2, ok3)
	}
	s.Run(1)
	if delivered != 2 || l.Drops != 1 {
		t.Errorf("delivered=%d drops=%d", delivered, l.Drops)
	}
}

func TestLinkDown(t *testing.T) {
	s := NewSim()
	delivered := 0
	l := NewLink(s, 1, 2, 0, 0.05, 0, func(at, from int, payload any) { delivered++ })
	l.Down()
	if l.Send(1, 100, nil) {
		t.Error("send on down link succeeded")
	}
	l.Up()
	l.Send(1, 100, nil)
	// Take it down while the packet is in flight: packet is lost.
	s.Schedule(0.01, func() { l.Down() })
	s.Run(1)
	if delivered != 0 {
		t.Error("in-flight packet survived link failure")
	}
	if l.Drops != 2 {
		t.Errorf("drops = %d", l.Drops)
	}
	if l.LostInFlight != 1 {
		t.Errorf("lost in flight = %d, want 1", l.LostInFlight)
	}
}

func TestLinkDownMidFlightThenUp(t *testing.T) {
	// Regression: the Up/Down contract says packets in flight when the
	// link goes down are lost. A flap that completes before the arrival
	// time (down at 10 ms, up at 20 ms, arrival at 50 ms) used to deliver
	// the packet because only the delivery-time administrative state was
	// checked.
	s := NewSim()
	delivered := 0
	l := NewLink(s, 1, 2, 0, 0.05, 0, func(at, from int, payload any) { delivered++ })
	if !l.Send(1, 100, nil) {
		t.Fatal("send failed")
	}
	s.Schedule(0.01, func() { l.Down() })
	s.Schedule(0.02, func() { l.Up() })
	s.Run(1)
	if delivered != 0 {
		t.Error("packet in flight during a flap was delivered")
	}
	if l.Drops != 1 || l.LostInFlight != 1 {
		t.Errorf("drops = %d lostInFlight = %d, want 1/1", l.Drops, l.LostInFlight)
	}
	if !l.IsUp() {
		t.Error("link should be administratively up again")
	}
	// A packet sent after the flap completes is unaffected.
	l.Send(1, 100, nil)
	s.Run(2)
	if delivered != 1 {
		t.Errorf("post-flap delivery = %d, want 1", delivered)
	}
}

func TestUtilization(t *testing.T) {
	s := NewSim()
	l := NewLink(s, 1, 2, 8000, 0, 0, nil)
	// 5 packets × 0.1 s serialization = 0.5 s busy.
	for i := 0; i < 5; i++ {
		l.Send(1, 100, nil)
	}
	s.Run(1)
	if math.Abs(l.Utilization()-0.5) > 1e-9 {
		t.Errorf("utilization = %v", l.Utilization())
	}
}

func TestPeer(t *testing.T) {
	s := NewSim()
	l := NewLink(s, 7, 9, 0, 0, 0, nil)
	if l.Peer(7) != 9 || l.Peer(9) != 7 || l.Peer(3) != -1 {
		t.Error("Peer wrong")
	}
}

func TestInfiniteRateLink(t *testing.T) {
	s := NewSim()
	var at float64
	l := NewLink(s, 1, 2, 0, 0.25, 0, func(int, int, any) { at = s.Now() })
	l.Send(1, 1<<20, nil)
	s.Run(1)
	if math.Abs(at-0.25) > 1e-9 {
		t.Errorf("rate-0 (infinite) link arrival = %v", at)
	}
}

func TestImpairmentLoss(t *testing.T) {
	s := NewSim()
	delivered := 0
	l := NewLink(s, 1, 2, 0, 0.001, 0, func(at, from int, payload any) { delivered++ })
	im := NewImpairment(42, 0.5)
	im.Attach(s, l, 100)
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(1, 100, nil)
	}
	s.Run(10)
	if delivered == 0 || delivered == n {
		t.Fatalf("loss model inert: %d/%d delivered", delivered, n)
	}
	frac := float64(delivered) / n
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("delivery fraction %v, want ≈0.5", frac)
	}
	// Regression: stochastic channel loss must NOT pollute Link.Drops
	// (the queue-overflow / link-down counter); it has its own counter.
	if l.Drops != 0 {
		t.Errorf("impairment loss leaked into Link.Drops: %d", l.Drops)
	}
	if im.Losses != int64(n-delivered) {
		t.Errorf("impairment losses = %d, want %d", im.Losses, n-delivered)
	}
}

func TestImpairmentLossWindow(t *testing.T) {
	// LossUntil bounds the storm: packets delivered after the window pass
	// untouched.
	s := NewSim()
	delivered := 0
	l := NewLink(s, 1, 2, 0, 0.001, 0, func(at, from int, payload any) { delivered++ })
	im := NewImpairment(3, 1.0) // lose everything...
	im.LossUntil = 1.0          // ...but only during the first second
	im.Attach(s, l, 100)
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(float64(i)*0.3, func() { l.Send(1, 10, nil) })
	}
	s.Run(10)
	// Sends at t=0.0,0.3,0.6,0.9 arrive inside the window and are lost;
	// the remaining 6 arrive after t=1.0 and survive.
	if delivered != 6 {
		t.Errorf("delivered = %d, want 6", delivered)
	}
	if im.Losses != 4 {
		t.Errorf("losses = %d, want 4", im.Losses)
	}
}

func TestImpairmentFlaps(t *testing.T) {
	s := NewSim()
	l := NewLink(s, 1, 2, 0, 0, 0, nil)
	im := NewImpairment(7, 0)
	im.FlapRate = 2 // ~2 flaps/s
	im.FlapDown = 0.05
	im.Attach(s, l, 10)
	downObserved := false
	for i := 0; i < 1000; i++ {
		s.Schedule(float64(i)*0.01, func() {
			if !l.IsUp() {
				downObserved = true
			}
		})
	}
	s.Run(10)
	if !downObserved {
		t.Error("link never observed down despite flapping")
	}
	if !l.IsUp() && s.Pending() == 0 {
		t.Error("link left down after horizon")
	}
}

func TestImpairmentDeterministic(t *testing.T) {
	run := func() int {
		s := NewSim()
		delivered := 0
		l := NewLink(s, 1, 2, 0, 0.001, 0, func(int, int, any) { delivered++ })
		NewImpairment(9, 0.3).Attach(s, l, 100)
		for i := 0; i < 500; i++ {
			l.Send(1, 10, nil)
		}
		s.Run(5)
		return delivered
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic impairment: %d vs %d", a, b)
	}
}
