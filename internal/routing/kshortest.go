package routing

import (
	"math"
	"sort"
)

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing weight order (Yen's algorithm). Used by the multipath
// load-balancing intents of §4.2 / Figure 18c.
func (g *Graph) KShortestPaths(src, dst, k int) [][]int {
	first, _, ok := g.ShortestPath(src, dst)
	if !ok || k < 1 {
		return nil
	}
	paths := [][]int{first}
	var candidates []cand

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]
			// Edges/nodes to exclude: any path sharing the root must not
			// reuse its next edge; root nodes (except spur) are removed.
			bannedNext := map[int]bool{}
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					bannedNext[p[i+1]] = true
				}
			}
			removed := map[int]bool{}
			for _, u := range rootPath[:len(rootPath)-1] {
				removed[u] = true
			}
			skip := func(n int) bool { return removed[n] }
			// Shortest spur path avoiding removed nodes and banned first
			// hops: emulate the banned first hop by also removing those
			// neighbors unless dst itself is banned-adjacent... simplest:
			// run on a filtered graph copy.
			spurPath, ok := g.spurPath(spurNode, dst, skip, bannedNext)
			if !ok {
				continue
			}
			full := append(append([]int{}, rootPath[:len(rootPath)-1]...), spurPath...)
			if containsPath(paths, full) || containsCand(candidates, full) {
				continue
			}
			w := g.PathWeight(full)
			if math.IsInf(w, 1) {
				continue
			}
			candidates = append(candidates, cand{full, w})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].w != candidates[b].w {
				return candidates[a].w < candidates[b].w
			}
			return lexLess(candidates[a].path, candidates[b].path)
		})
		paths = append(paths, candidates[0].path)
		candidates = candidates[1:]
	}
	return paths
}

// spurPath runs Dijkstra from spur to dst skipping nodes and the banned
// first hops out of spur.
func (g *Graph) spurPath(spur, dst int, skip func(int) bool, bannedNext map[int]bool) ([]int, bool) {
	// Temporary graph view: implemented by running Dijkstra manually with
	// the first-hop ban.
	sub := NewGraph(g.n)
	for u := 0; u < g.n; u++ {
		if skip(u) {
			continue
		}
		for _, e := range g.adj[u] {
			if skip(e.To) {
				continue
			}
			if u == spur && bannedNext[e.To] {
				continue
			}
			sub.AddEdge(u, e.To, e.W)
		}
	}
	p, _, ok := sub.ShortestPath(spur, dst)
	return p, ok
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(paths [][]int, p []int) bool {
	for _, q := range paths {
		if samePath(p, q) {
			return true
		}
	}
	return false
}

type cand struct {
	path []int
	w    float64
}

func containsCand(cands []cand, p []int) bool {
	for _, c := range cands {
		if samePath(c.path, p) {
			return true
		}
	}
	return false
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// PathChange counts how many of the given (src,dst) pairs changed their
// shortest path between two graphs — the Figure 9b churn statistic.
func PathChange(prev, cur *Graph, pairs [][2]int) int {
	changed := 0
	for _, pr := range pairs {
		p1, _, ok1 := prev.ShortestPath(pr[0], pr[1])
		p2, _, ok2 := cur.ShortestPath(pr[0], pr[1])
		switch {
		case ok1 != ok2:
			changed++
		case ok1 && !samePath(p1, p2):
			changed++
		}
	}
	return changed
}
