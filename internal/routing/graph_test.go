package routing

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// diamond builds:  0 --1-- 1 --1-- 3   and a heavier bypass 0 --1.5-- 2 --1.5-- 3
func diamond() *Graph {
	g := NewGraph(4)
	g.AddBiEdge(0, 1, 1)
	g.AddBiEdge(1, 3, 1)
	g.AddBiEdge(0, 2, 1.5)
	g.AddBiEdge(2, 3, 1.5)
	return g
}

func TestShortestPathBasic(t *testing.T) {
	g := diamond()
	p, w, ok := g.ShortestPath(0, 3)
	if !ok || w != 2 || !reflect.DeepEqual(p, []int{0, 1, 3}) {
		t.Errorf("path=%v w=%v ok=%v", p, w, ok)
	}
	// Trivial path to self.
	p, w, ok = g.ShortestPath(2, 2)
	if !ok || w != 0 || !reflect.DeepEqual(p, []int{2}) {
		t.Errorf("self path=%v w=%v", p, w)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddBiEdge(0, 1, 1)
	if _, _, ok := g.ShortestPath(0, 2); ok {
		t.Error("disconnected node reachable")
	}
	if g.Reachable(0, 2) {
		t.Error("Reachable wrong")
	}
	if !g.Reachable(0, 1) {
		t.Error("Reachable wrong for connected")
	}
}

func TestShortestPathAvoiding(t *testing.T) {
	g := diamond()
	p, w, ok := g.ShortestPathAvoiding(0, 3, func(n int) bool { return n == 1 })
	if !ok || !reflect.DeepEqual(p, []int{0, 2, 3}) || w != 3 {
		t.Errorf("avoiding path=%v w=%v", p, w)
	}
	if _, _, ok := g.ShortestPathAvoiding(0, 3, func(n int) bool { return n == 1 || n == 2 }); ok {
		t.Error("both middle nodes removed should disconnect")
	}
}

func TestDijkstraAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		g := NewGraph(n)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = math.Inf(1)
			}
			w[i][i] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.45 {
					wt := 0.1 + rng.Float64()*10
					g.AddEdge(i, j, wt)
					if wt < w[i][j] {
						w[i][j] = wt
					}
				}
			}
		}
		// Floyd–Warshall reference.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if w[i][k]+w[k][j] < w[i][j] {
						w[i][j] = w[i][k] + w[k][j]
					}
				}
			}
		}
		for s := 0; s < n; s++ {
			_, dist := g.ShortestPathTree(s, nil)
			for d := 0; d < n; d++ {
				if math.Abs(dist[d]-w[s][d]) > 1e-9 && !(math.IsInf(dist[d], 1) && math.IsInf(w[s][d], 1)) {
					t.Fatalf("trial %d: dist[%d->%d] = %v, want %v", trial, s, d, dist[d], w[s][d])
				}
			}
		}
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative weight accepted")
		}
	}()
	NewGraph(2).AddEdge(0, 1, -1)
}

func TestConnectedComponentSize(t *testing.T) {
	g := NewGraph(5)
	g.AddBiEdge(0, 1, 1)
	g.AddBiEdge(1, 2, 1)
	g.AddBiEdge(3, 4, 1)
	if got := g.ConnectedComponentSize(0); got != 3 {
		t.Errorf("component(0) = %d", got)
	}
	if got := g.ConnectedComponentSize(3); got != 2 {
		t.Errorf("component(3) = %d", got)
	}
}

func TestPathWeight(t *testing.T) {
	g := diamond()
	if w := g.PathWeight([]int{0, 2, 3}); w != 3 {
		t.Errorf("weight = %v", w)
	}
	if w := g.PathWeight([]int{0, 3}); !math.IsInf(w, 1) {
		t.Errorf("missing edge weight = %v", w)
	}
	if w := g.PathWeight([]int{1}); w != 0 {
		t.Errorf("single-node weight = %v", w)
	}
}

func TestKShortestPaths(t *testing.T) {
	g := diamond()
	paths := g.KShortestPaths(0, 3, 3)
	if len(paths) != 2 {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	if !reflect.DeepEqual(paths[0], []int{0, 1, 3}) {
		t.Errorf("first = %v", paths[0])
	}
	if !reflect.DeepEqual(paths[1], []int{0, 2, 3}) {
		t.Errorf("second = %v", paths[1])
	}
}

func TestKShortestLoopless(t *testing.T) {
	// Dense graph: all paths must be simple and sorted by weight.
	rng := rand.New(rand.NewSource(9))
	g := NewGraph(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if rng.Float64() < 0.6 {
				g.AddBiEdge(i, j, 0.5+rng.Float64()*5)
			}
		}
	}
	paths := g.KShortestPaths(0, 7, 5)
	if len(paths) == 0 {
		t.Skip("random graph disconnected")
	}
	prevW := 0.0
	for _, p := range paths {
		seen := map[int]bool{}
		for _, n := range p {
			if seen[n] {
				t.Fatalf("loop in path %v", p)
			}
			seen[n] = true
		}
		if p[0] != 0 || p[len(p)-1] != 7 {
			t.Fatalf("endpoints wrong in %v", p)
		}
		w := g.PathWeight(p)
		if w < prevW-1e-9 {
			t.Fatalf("paths not sorted: %v after %v", w, prevW)
		}
		prevW = w
	}
	// Distinct paths.
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if samePath(paths[i], paths[j]) {
				t.Fatalf("duplicate path %v", paths[i])
			}
		}
	}
}

func TestPathChange(t *testing.T) {
	a := diamond()
	b := diamond()
	pairs := [][2]int{{0, 3}, {1, 2}}
	if n := PathChange(a, b, pairs); n != 0 {
		t.Errorf("identical graphs changed %d paths", n)
	}
	// Remove the cheap middle route in c.
	c := NewGraph(4)
	c.AddBiEdge(0, 2, 1.5)
	c.AddBiEdge(2, 3, 1.5)
	if n := PathChange(a, c, pairs); n != 2 {
		t.Errorf("changed = %d, want 2", n)
	}
}

func TestNumEdges(t *testing.T) {
	g := diamond()
	if g.NumEdges() != 8 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	if g.N() != 4 {
		t.Errorf("n = %d", g.N())
	}
}

func TestKShortestNoPath(t *testing.T) {
	g := NewGraph(3)
	g.AddBiEdge(0, 1, 1)
	if paths := g.KShortestPaths(0, 2, 3); paths != nil {
		t.Errorf("disconnected pair yielded %v", paths)
	}
	if paths := g.KShortestPaths(0, 1, 0); paths != nil {
		t.Errorf("k=0 yielded %v", paths)
	}
}

func TestKShortestSelfLoopQuery(t *testing.T) {
	g := diamond()
	paths := g.KShortestPaths(2, 2, 3)
	if len(paths) == 0 || len(paths[0]) != 1 || paths[0][0] != 2 {
		t.Errorf("self query = %v", paths)
	}
}

func TestShortestPathTreeSkipSource(t *testing.T) {
	g := diamond()
	parent, dist := g.ShortestPathTree(0, func(n int) bool { return n == 0 })
	for i, p := range parent {
		if p != -1 {
			t.Errorf("node %d reachable (%d) despite skipped source", i, p)
		}
		if !math.IsInf(dist[i], 1) {
			t.Errorf("node %d finite distance", i)
		}
	}
}

func TestParallelEdgesTakeCheapest(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 2)
	_, w, ok := g.ShortestPath(0, 1)
	if !ok || w != 2 {
		t.Errorf("parallel edges: w=%v ok=%v", w, ok)
	}
	if pw := g.PathWeight([]int{0, 1}); pw != 2 {
		t.Errorf("PathWeight over parallel edges = %v", pw)
	}
}
