// Package routing provides the graph algorithms shared by TinyLEO's
// control plane, the TS-SDN baseline, and the evaluation harness: Dijkstra
// shortest paths, BFS reachability, Yen's k-shortest paths, and path-churn
// accounting (Figure 9).
package routing

import (
	"container/heap"
	"math"
)

// Graph is a directed weighted graph over nodes 0..n-1. Use AddBiEdge for
// the undirected satellite/cell graphs.
type Graph struct {
	n   int
	adj [][]Edge
}

// Edge is an outgoing edge.
type Edge struct {
	To int
	W  float64
}

// NewGraph creates a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts a directed edge u→v with weight w (must be ≥ 0).
func (g *Graph) AddEdge(u, v int, w float64) {
	if w < 0 {
		panic("routing: negative edge weight")
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
}

// AddBiEdge inserts u→v and v→u with weight w.
func (g *Graph) AddBiEdge(u, v int, w float64) {
	g.AddEdge(u, v, w)
	g.AddEdge(v, u, w)
}

// Neighbors returns the outgoing edges of u (not a copy; do not mutate).
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	node int
	dist float64
}

type pq []item

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(item)) }
func (q *pq) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

// ShortestPathTree runs Dijkstra from src, returning parent pointers
// (parent[src] = src, parent[unreachable] = -1) and distances (+Inf if
// unreachable). skip, if non-nil, marks nodes to treat as removed.
func (g *Graph) ShortestPathTree(src int, skip func(node int) bool) (parent []int, dist []float64) {
	parent = make([]int, g.n)
	dist = make([]float64, g.n)
	for i := range parent {
		parent[i] = -1
		dist[i] = math.Inf(1)
	}
	if skip != nil && skip(src) {
		return
	}
	dist[src] = 0
	parent[src] = src
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if skip != nil && skip(e.To) {
				continue
			}
			if nd := it.dist + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = it.node
				heap.Push(q, item{e.To, nd})
			}
		}
	}
	return
}

// ShortestPath returns the minimum-weight path from src to dst (inclusive
// of both), its total weight, and whether dst is reachable.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64, bool) {
	return g.ShortestPathAvoiding(src, dst, nil)
}

// ShortestPathAvoiding is ShortestPath with nodes removed by skip.
func (g *Graph) ShortestPathAvoiding(src, dst int, skip func(int) bool) ([]int, float64, bool) {
	parent, dist := g.ShortestPathTree(src, skip)
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1), false
	}
	var rev []int
	for at := dst; ; at = parent[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, dist[dst], true
}

// Reachable reports whether dst is reachable from src.
func (g *Graph) Reachable(src, dst int) bool {
	_, _, ok := g.ShortestPath(src, dst)
	return ok
}

// ConnectedComponentSize returns the number of nodes reachable from src
// (including src), ignoring edge weights.
func (g *Graph) ConnectedComponentSize(src int) int {
	seen := make([]bool, g.n)
	stack := []int{src}
	seen[src] = true
	count := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return count
}

// PathWeight sums the edge weights along path; returns +Inf if an edge is
// missing.
func (g *Graph) PathWeight(path []int) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		w := math.Inf(1)
		for _, e := range g.adj[path[i-1]] {
			if e.To == path[i] && e.W < w {
				w = e.W
			}
		}
		if math.IsInf(w, 1) {
			return w
		}
		total += w
	}
	return total
}
